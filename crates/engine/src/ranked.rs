//! The user-facing ranked-enumeration API.

use crate::answer::Answer;
use crate::compile::Compiled;
use crate::cycle;
use crate::error::EngineError;
use anyk_core::dioid::{Dioid, MinMaxDioid, OrderedF64, TropicalMin};
use anyk_core::{
    ranked_enumerate, AnyKAlgorithm, AnyKPart, MemoryStats, RankedIter, SuccessorKind,
    UnionEnumerator,
};
use anyk_query::ConjunctiveQuery;
use anyk_query::RankingFunction;
use anyk_storage::{Database, DeltaBatch, RowRef, Value};

/// A full conjunctive query prepared for ranked enumeration.
///
/// * Acyclic queries are compiled into a single T-DP instance (§5.1) with
///   `TTF = O(n)` pre-processing.
/// * Simple ℓ-cycle queries (ℓ ≥ 4) are decomposed into ℓ + 1 acyclic trees
///   (§5.3.1) whose ranked streams are merged by a UT-DP union (§5.2); the
///   pre-processing is `O(n^{2−2/ℓ})`, matching the best known bound for the
///   Boolean version of the query.
/// * Other cyclic queries are rejected with
///   [`EngineError::UnsupportedCyclicQuery`]; they can still be evaluated
///   through [`crate::wcoj`] followed by sorting (without the any-k
///   guarantees).
///
/// ```
/// use anyk_engine::{RankedQuery, RankingFunction};
/// use anyk_core::AnyKAlgorithm;
/// use anyk_query::QueryBuilder;
/// use anyk_storage::{Database, Relation};
///
/// let mut db = Database::new();
/// let mut r1 = Relation::new("R1", 2);
/// r1.push_edge(1, 10, 1.0);
/// r1.push_edge(2, 20, 4.0);
/// let mut r2 = Relation::new("R2", 2);
/// r2.push_edge(10, 5, 2.0);
/// r2.push_edge(20, 6, 1.0);
/// db.add(r1);
/// db.add(r2);
///
/// let query = QueryBuilder::path(2).build();
/// let prepared = RankedQuery::new(&db, &query).unwrap();
/// let top: Vec<_> = prepared.enumerate(AnyKAlgorithm::Take2).collect();
/// assert_eq!(top[0].weight(), 3.0);
/// assert_eq!(top[0].values(), &[1, 10, 5]);
/// ```
///
/// Queries with **selections** — predicates from a
/// [`QuerySpec`](anyk_query::QuerySpec) (see [`RankedQuery::from_spec`] /
/// [`RankedQuery::from_text`]) or repeated variables within an atom
/// (`R(x, x)`) — are first rewritten over filtered relation copies (§2.1's
/// linear-time preprocessing, the `select` module); the copies live inside the
/// `RankedQuery`, so the borrowed database is never touched.
pub struct RankedQuery<'a> {
    db: &'a Database,
    /// The request as the caller wrote it (original relation names).
    query: ConjunctiveQuery,
    /// Selection pushdown output: the scratch database of filtered copies
    /// and the rewritten query the plan was actually compiled from.
    effective: Option<(Database, ConjunctiveQuery)>,
    ranking: RankingFunction,
    /// Stop enumeration after this many answers (from the spec's `limit`).
    limit: Option<usize>,
    plan: Plan,
}

/// A ranked stream of assembled [`Answer`]s that can also report the live
/// MEM(k) footprint of the enumeration structures driving it.
///
/// This is what [`RankedQuery::enumerate`] and
/// [`PreparedQuery::enumerate`](crate::PreparedQuery::enumerate) hand back:
/// a plain `Iterator<Item = Answer> + Send`, plus [`AnswerStream::live_mem`]
/// so a serving layer can charge each suspended cursor's *actual* resident
/// footprint against a memory budget instead of re-profiling from scratch.
pub trait AnswerStream: Iterator<Item = Answer> + Send {
    /// A MEM(k) snapshot of the stream's current data structures —
    /// candidate queue, shared-prefix arena, successor-structure table —
    /// summed across the trees of a cycle decomposition. `None` for
    /// algorithms that do not organise memory this way (`Recursive`,
    /// `Batch`). Call at page granularity, not per answer.
    fn live_mem(&self) -> Option<MemoryStats> {
        None
    }
}

/// Acyclic plan stream: core solutions assembled into answers.
struct AssembleStream<'s, D: Dioid<V = OrderedF64>> {
    inner: RankedIter<'s, D>,
    compiled: &'s Compiled<D>,
    db: &'s Database,
    ranking: RankingFunction,
}

impl<D: Dioid<V = OrderedF64>> Iterator for AssembleStream<'_, D> {
    type Item = Answer;
    fn next(&mut self) -> Option<Answer> {
        let ranking = self.ranking;
        self.inner
            .next()
            .map(|sol| self.compiled.assemble(self.db, &sol, |w| ranking.decode(w)))
    }
}

impl<D: Dioid<V = OrderedF64>> AnswerStream for AssembleStream<'_, D> {
    fn live_mem(&self) -> Option<MemoryStats> {
        self.inner.live_mem()
    }
}

/// One source of a cycle-union stream: a decomposition tree's ranked
/// solutions assembled into `(encoded weight, answer)` pairs with the head
/// values reordered into the original query's head order.
struct TreeSource<'s, D: Dioid<V = OrderedF64>> {
    inner: RankedIter<'s, D>,
    tree: &'s CycleTreePlan<D>,
    ranking: RankingFunction,
}

impl<D: Dioid<V = OrderedF64>> Iterator for TreeSource<'_, D> {
    type Item = (OrderedF64, Answer);
    fn next(&mut self) -> Option<Self::Item> {
        let sol = self.inner.next()?;
        let encoded = sol.weight;
        let ranking = self.ranking;
        let raw = self
            .tree
            .compiled
            .assemble(&self.tree.database, &sol, |w| ranking.decode(w));
        // Witnesses reference bag tuples, not original input tuples, so
        // they are dropped.
        let values: Vec<Value> = self.tree.head_perm.iter().map(|&p| raw.value(p)).collect();
        Some((encoded, Answer::new(raw.weight(), values, Vec::new())))
    }
}

/// Cycle plan stream: the ranked union over the decomposition trees.
struct CycleStream<'s, D: Dioid<V = OrderedF64>> {
    union: UnionEnumerator<OrderedF64, Answer, TreeSource<'s, D>>,
}

impl<D: Dioid<V = OrderedF64>> Iterator for CycleStream<'_, D> {
    type Item = Answer;
    fn next(&mut self) -> Option<Answer> {
        self.union.next().map(|(_, ans)| ans)
    }
}

impl<D: Dioid<V = OrderedF64>> AnswerStream for CycleStream<'_, D> {
    fn live_mem(&self) -> Option<MemoryStats> {
        let mut total = MemoryStats::default();
        let mut any = false;
        for source in self.union.sources() {
            if let Some(m) = source.inner.live_mem() {
                total.absorb(&m);
                any = true;
            }
        }
        any.then_some(total)
    }
}

/// A stream truncated after `remaining` answers (a spec's `limit`),
/// forwarding MEM(k) reporting to the inner stream.
pub(crate) struct LimitStream<I> {
    pub(crate) inner: I,
    pub(crate) remaining: usize,
}

impl<I: Iterator<Item = Answer>> Iterator for LimitStream<I> {
    type Item = Answer;
    fn next(&mut self) -> Option<Answer> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next()
    }
}

impl<I: AnswerStream> AnswerStream for LimitStream<I> {
    fn live_mem(&self) -> Option<MemoryStats> {
        self.inner.live_mem()
    }
}

impl<S: AnswerStream + ?Sized> AnswerStream for Box<S> {
    fn live_mem(&self) -> Option<MemoryStats> {
        (**self).live_mem()
    }
}

/// One tree of a cycle decomposition, compiled and ready to enumerate.
pub(crate) struct CycleTreePlan<D: Dioid<V = OrderedF64>> {
    /// The materialised bag relations (owned by the plan).
    database: Database,
    compiled: Compiled<D>,
    /// `head_perm[i]` = position of the i-th *original* head variable within
    /// the tree query's head variables.
    head_perm: Vec<usize>,
    /// Partition label (useful for diagnostics and the experiment harness).
    #[allow(dead_code)]
    label: String,
}

/// A fully compiled execution plan, decoupled from how the database and
/// query are owned: [`RankedQuery`] borrows them, [`crate::PreparedQuery`]
/// owns them (`Arc`-shared database). The plan itself owns every compiled
/// T-DP instance (bottom-up phase already run), so enumeration never goes
/// back to preprocessing.
pub(crate) enum Plan {
    AcyclicSum(Compiled<TropicalMin>),
    AcyclicBottleneck(Compiled<MinMaxDioid>),
    CycleSum(Vec<CycleTreePlan<TropicalMin>>),
    CycleBottleneck(Vec<CycleTreePlan<MinMaxDioid>>),
}

impl Plan {
    /// Compile `query` over `db` under `ranking` (validation, join-tree /
    /// cycle-decomposition selection, T-DP compilation, bottom-up phase).
    pub(crate) fn prepare(
        db: &Database,
        query: &ConjunctiveQuery,
        ranking: RankingFunction,
    ) -> Result<Self, EngineError> {
        Self::prepare_opts(db, query, ranking, false, None)
    }

    /// [`Plan::prepare`] with an explicit choice about delta support and
    /// worker sizing: `retain_delta` compiles acyclic plans through
    /// [`compile_with_delta`], enabling [`Plan::refresh`] at the cost of one
    /// extra CSR copy plus `O(n)` tuple→state maps (cycle plans ignore the
    /// flag — they recompile from scratch on ingestion); `threads` pins the
    /// bottom-up sweep's worker count (`None` = the `ANYK_THREADS` env
    /// default).
    pub(crate) fn prepare_opts(
        db: &Database,
        query: &ConjunctiveQuery,
        ranking: RankingFunction,
        retain_delta: bool,
        threads: Option<usize>,
    ) -> Result<Self, EngineError> {
        anyk_core::faults::check("engine.compile")?;
        let _span = anyk_obs::phase::span(anyk_obs::Phase::Compile);
        crate::compile::validate(db, query)?;
        if query.is_acyclic() {
            if ranking.is_bottleneck() {
                let c = crate::compile::compile_with_opts::<MinMaxDioid, _>(
                    db,
                    query,
                    |t| ranking.encode(t.weight()),
                    retain_delta,
                    threads,
                )?;
                Ok(Plan::AcyclicBottleneck(c))
            } else {
                let c = crate::compile::compile_with_opts::<TropicalMin, _>(
                    db,
                    query,
                    |t| ranking.encode(t.weight()),
                    retain_delta,
                    threads,
                )?;
                Ok(Plan::AcyclicSum(c))
            }
        } else {
            let combine = ranking.combine_fn();
            let trees = cycle::decompose(db, query, |w| ranking.encode(w), combine)?;
            let original_head = query.head_variables();
            if ranking.is_bottleneck() {
                Ok(Plan::CycleBottleneck(Self::compile_trees::<MinMaxDioid>(
                    trees,
                    &original_head,
                    threads,
                )?))
            } else {
                Ok(Plan::CycleSum(Self::compile_trees::<TropicalMin>(
                    trees,
                    &original_head,
                    threads,
                )?))
            }
        }
    }

    fn compile_trees<D: Dioid<V = OrderedF64>>(
        trees: Vec<cycle::DecomposedTree>,
        original_head: &[String],
        threads: Option<usize>,
    ) -> Result<Vec<CycleTreePlan<D>>, EngineError> {
        trees
            .into_iter()
            .map(|tree| {
                // Bag weights are already encoded by the decomposition.
                let compiled = crate::compile::compile_with_opts::<D, _>(
                    &tree.database,
                    &tree.query,
                    |t: RowRef<'_>| t.weight(),
                    false,
                    threads,
                )?;
                let tree_head = tree.query.head_variables();
                let head_perm = original_head
                    .iter()
                    .map(|v| {
                        tree_head.iter().position(|x| x == v).ok_or_else(|| {
                            EngineError::Internal(format!(
                                "cycle decomposition lost head variable `{v}`"
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                Ok(CycleTreePlan {
                    database: tree.database,
                    compiled,
                    head_perm,
                    label: tree.label,
                })
            })
            .collect()
    }

    /// Whether the plan uses the cycle decomposition.
    pub(crate) fn is_decomposed(&self) -> bool {
        matches!(self, Plan::CycleSum(_) | Plan::CycleBottleneck(_))
    }

    /// Whether [`Plan::refresh`] can patch this plan in place (acyclic and
    /// compiled with delta support).
    pub(crate) fn supports_refresh(&self) -> bool {
        match self {
            Plan::AcyclicSum(c) => c.supports_refresh(),
            Plan::AcyclicBottleneck(c) => c.supports_refresh(),
            Plan::CycleSum(_) | Plan::CycleBottleneck(_) => false,
        }
    }

    /// Delta-maintain the plan: produce a new plan answering the same query
    /// over `new_db`, which must be the plan's snapshot plus `batch` (see
    /// [`crate::refresh`]). Returns the refreshed plan and the core patch
    /// statistics (how local the dirty-cone re-sweep was).
    pub(crate) fn refresh(
        &self,
        new_db: &Database,
        batch: &DeltaBatch,
        ranking: RankingFunction,
    ) -> Result<(Self, anyk_core::tdp::PatchStats), EngineError> {
        anyk_core::faults::check("engine.refresh")?;
        let _span = anyk_obs::phase::span(anyk_obs::Phase::Refresh);
        match self {
            Plan::AcyclicSum(c) => {
                let (c, stats) =
                    crate::refresh::refresh_compiled(c, new_db, batch, &|w| ranking.encode(w))?;
                Ok((Plan::AcyclicSum(c), stats))
            }
            Plan::AcyclicBottleneck(c) => {
                let (c, stats) =
                    crate::refresh::refresh_compiled(c, new_db, batch, &|w| ranking.encode(w))?;
                Ok((Plan::AcyclicBottleneck(c), stats))
            }
            Plan::CycleSum(_) | Plan::CycleBottleneck(_) => Err(EngineError::RefreshUnsupported(
                "cycle-decomposed plans are rebuilt from their bag databases".into(),
            )),
        }
    }

    /// The exact number of answers, without enumerating them.
    pub(crate) fn count_answers(&self) -> u128 {
        match self {
            Plan::AcyclicSum(c) => c.instance.count_solutions(),
            Plan::AcyclicBottleneck(c) => c.instance.count_solutions(),
            Plan::CycleSum(trees) => trees
                .iter()
                .map(|t| t.compiled.instance.count_solutions())
                .sum(),
            Plan::CycleBottleneck(trees) => trees
                .iter()
                .map(|t| t.compiled.instance.count_solutions())
                .sum(),
        }
    }

    /// Enumerate every answer exactly once, in rank order. `db` must be the
    /// database the plan was prepared over (used only to resolve witness
    /// tuples into head values for acyclic plans; cycle plans carry their
    /// own bag databases).
    ///
    /// The returned stream is `Send` and retains all enumeration state
    /// (candidate queues, prefix arenas, branch streams, the union heap)
    /// between `next()` calls, so it can be suspended in a session table
    /// and resumed on any thread without perturbing the stream; its
    /// [`AnswerStream::live_mem`] reports the structures' current MEM(k).
    pub(crate) fn enumerate<'s>(
        &'s self,
        db: &'s Database,
        algorithm: AnyKAlgorithm,
        ranking: RankingFunction,
    ) -> Box<dyn AnswerStream + 's> {
        match self {
            Plan::AcyclicSum(c) => Self::enumerate_acyclic(db, c, algorithm, ranking),
            Plan::AcyclicBottleneck(c) => Self::enumerate_acyclic(db, c, algorithm, ranking),
            Plan::CycleSum(trees) => Self::enumerate_cycle(trees, algorithm, ranking),
            Plan::CycleBottleneck(trees) => Self::enumerate_cycle(trees, algorithm, ranking),
        }
    }

    /// See [`RankedQuery::mem_profile`].
    pub(crate) fn mem_profile(&self, algorithm: AnyKAlgorithm, k: usize) -> Option<MemoryStats> {
        let kind = match algorithm {
            AnyKAlgorithm::Eager => SuccessorKind::Eager,
            AnyKAlgorithm::Lazy => SuccessorKind::Lazy,
            AnyKAlgorithm::All => SuccessorKind::All,
            AnyKAlgorithm::Take2 => SuccessorKind::Take2,
            AnyKAlgorithm::Recursive | AnyKAlgorithm::Batch => return None,
        };

        fn profile_one<D: Dioid>(c: &Compiled<D>, kind: SuccessorKind, k: usize) -> MemoryStats {
            let mut part = AnyKPart::new(&c.instance, kind);
            while part.emitted() < k && part.next().is_some() {}
            part.memory_stats()
        }

        let mut total = MemoryStats::default();
        match self {
            Plan::AcyclicSum(c) => total.absorb(&profile_one(c, kind, k)),
            Plan::AcyclicBottleneck(c) => total.absorb(&profile_one(c, kind, k)),
            Plan::CycleSum(trees) => {
                for t in trees {
                    total.absorb(&profile_one(&t.compiled, kind, k));
                }
            }
            Plan::CycleBottleneck(trees) => {
                for t in trees {
                    total.absorb(&profile_one(&t.compiled, kind, k));
                }
            }
        }
        Some(total)
    }

    fn enumerate_acyclic<'s, D: Dioid<V = OrderedF64>>(
        db: &'s Database,
        compiled: &'s Compiled<D>,
        algorithm: AnyKAlgorithm,
        ranking: RankingFunction,
    ) -> Box<dyn AnswerStream + 's> {
        Box::new(AssembleStream {
            inner: ranked_enumerate(&compiled.instance, algorithm),
            compiled,
            db,
            ranking,
        })
    }

    fn enumerate_cycle<'s, D: Dioid<V = OrderedF64>>(
        trees: &'s [CycleTreePlan<D>],
        algorithm: AnyKAlgorithm,
        ranking: RankingFunction,
    ) -> Box<dyn AnswerStream + 's> {
        // One ranked source per decomposition tree; the partitions are
        // disjoint (§5.3.1), so the union needs no duplicate elimination.
        let sources: Vec<TreeSource<'s, D>> = trees
            .iter()
            .map(|tree| TreeSource {
                inner: ranked_enumerate(&tree.compiled.instance, algorithm),
                tree,
                ranking,
            })
            .collect();
        Box::new(CycleStream {
            union: UnionEnumerator::new(sources),
        })
    }
}

impl<'a> RankedQuery<'a> {
    /// Prepare `query` over `db` with the default ranking
    /// ([`RankingFunction::SumAscending`]).
    pub fn new(db: &'a Database, query: &ConjunctiveQuery) -> Result<Self, EngineError> {
        Self::with_ranking(db, query, RankingFunction::SumAscending)
    }

    /// Prepare `query` over `db` with an explicit ranking function.
    pub fn with_ranking(
        db: &'a Database,
        query: &ConjunctiveQuery,
        ranking: RankingFunction,
    ) -> Result<Self, EngineError> {
        Self::build(db, query.clone(), ranking, &[], None)
    }

    /// Prepare a [`QuerySpec`](anyk_query::QuerySpec) over `db`: selection
    /// predicates are pushed down to filtered relation copies before
    /// compilation, and the spec's `limit` (if any) caps
    /// [`RankedQuery::enumerate`]. The spec's `algorithm` pin, being a
    /// per-enumeration choice, is left to the caller (read it from
    /// `spec.algorithm`).
    pub fn from_spec(db: &'a Database, spec: &anyk_query::QuerySpec) -> Result<Self, EngineError> {
        let query = spec.to_query()?;
        Self::build(db, query, spec.ranking, &spec.predicates, spec.limit)
    }

    /// Parse `text` in the query language and prepare it; see
    /// [`RankedQuery::from_spec`] and [`anyk_query::parse`] for the grammar.
    pub fn from_text(db: &'a Database, text: &str) -> Result<Self, EngineError> {
        Self::from_spec(db, &anyk_query::QuerySpec::parse(text)?)
    }

    fn build(
        db: &'a Database,
        query: ConjunctiveQuery,
        ranking: RankingFunction,
        predicates: &[anyk_query::Predicate],
        limit: Option<usize>,
    ) -> Result<Self, EngineError> {
        let effective = crate::select::rewrite_selections(db, &query, predicates)?;
        let plan = match &effective {
            Some((scratch, rewritten)) => Plan::prepare(scratch, rewritten, ranking)?,
            None => Plan::prepare(db, &query, ranking)?,
        };
        Ok(RankedQuery {
            db,
            query,
            effective,
            ranking,
            limit,
            plan,
        })
    }

    /// The database the plan enumerates and assembles answers over: the
    /// selection-pushdown scratch database when the query carried
    /// selections, the caller's database otherwise.
    fn exec_db(&self) -> &Database {
        self.effective.as_ref().map_or(self.db, |(db, _)| db)
    }

    /// The query this plan answers (as the caller wrote it).
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The result limit carried over from the spec, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// The ranking function in effect.
    pub fn ranking(&self) -> RankingFunction {
        self.ranking
    }

    /// A decoder mapping this query's answers back to original strings
    /// (identity on raw-id columns). Built over the *original* database and
    /// query — selection-pushdown copies share their source's dictionaries,
    /// and decomposed cycle plans emit original column ids reordered into
    /// the query's head order, so one decoder covers every plan shape.
    pub fn decoder(&self) -> crate::AnswerDecoder {
        crate::AnswerDecoder::for_query(self.db, &self.query)
    }

    /// Whether the plan uses the cycle decomposition (as opposed to a single
    /// acyclic T-DP instance).
    pub fn is_decomposed(&self) -> bool {
        self.plan.is_decomposed()
    }

    /// The exact number of answers [`RankedQuery::enumerate`] will produce,
    /// computed without enumerating them (stage-wise counting over the
    /// compiled instances, capped by the spec's limit when one is set).
    pub fn count_answers(&self) -> u128 {
        let n = self.plan.count_answers();
        match self.limit {
            Some(l) => n.min(l as u128),
            None => n,
        }
    }

    /// Enumerate every answer exactly once, in rank order, with the chosen
    /// any-k algorithm (stopping at the spec's limit when one is set).
    pub fn enumerate(&self, algorithm: AnyKAlgorithm) -> Box<dyn AnswerStream + '_> {
        let iter = self.plan.enumerate(self.exec_db(), algorithm, self.ranking);
        match self.limit {
            Some(l) => Box::new(LimitStream {
                inner: iter,
                remaining: l,
            }),
            None => iter,
        }
    }

    /// Convenience: the top `k` answers as a vector.
    pub fn top_k(&self, algorithm: AnyKAlgorithm, k: usize) -> Vec<Answer> {
        self.enumerate(algorithm).take(k).collect()
    }

    /// Run the anyK-part variant `algorithm` until `k` results (or
    /// exhaustion) and report the MEM(k) footprint of its data structures —
    /// candidate queue, shared-prefix arena, and successor-structure table.
    ///
    /// For a cycle plan the footprint is summed over the decomposition trees,
    /// each enumerated to `k` on its own — an upper bound on what the union
    /// enumerator would have touched. Returns `None` for `Recursive` and
    /// `Batch`, whose memory is not organised in these structures.
    pub fn mem_profile(&self, algorithm: AnyKAlgorithm, k: usize) -> Option<MemoryStats> {
        self.plan.mem_profile(algorithm, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::QueryBuilder;
    use anyk_storage::Relation;

    fn path_db() -> Database {
        let mut db = Database::new();
        let mut r1 = Relation::new("R1", 2);
        r1.push_edge(1, 10, 1.0);
        r1.push_edge(2, 20, 4.0);
        r1.push_edge(3, 10, 9.0);
        let mut r2 = Relation::new("R2", 2);
        r2.push_edge(10, 5, 2.0);
        r2.push_edge(20, 6, 1.0);
        db.add(r1);
        db.add(r2);
        db
    }

    /// Worst-case 4-cycle construction of §7: (0, i) and (i, 0) tuples.
    fn cycle_db(n: u64) -> Database {
        let mut db = Database::new();
        for i in 1..=4 {
            let mut r = Relation::new(format!("R{i}"), 2);
            for j in 1..=n / 2 {
                r.push_edge(0, j, (i as f64) + (j as f64) / 10.0);
                r.push_edge(j, 0, (i as f64) * 2.0 + (j as f64) / 10.0);
            }
            db.add(r);
        }
        db
    }

    #[test]
    fn acyclic_enumeration_in_ascending_order() {
        let db = path_db();
        let q = QueryBuilder::path(2).build();
        let rq = RankedQuery::new(&db, &q).unwrap();
        assert!(!rq.is_decomposed());
        assert_eq!(rq.count_answers(), 3);
        let all: Vec<Answer> = rq.enumerate(AnyKAlgorithm::Take2).collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].weight(), 3.0);
        assert_eq!(all[0].values(), &[1, 10, 5]);
        for w in all.windows(2) {
            assert!(w[0].weight() <= w[1].weight());
        }
    }

    #[test]
    fn descending_ranking_reverses_order() {
        let db = path_db();
        let q = QueryBuilder::path(2).build();
        let asc = RankedQuery::new(&db, &q).unwrap();
        let desc = RankedQuery::with_ranking(&db, &q, RankingFunction::SumDescending).unwrap();
        let a: Vec<f64> = asc
            .enumerate(AnyKAlgorithm::Lazy)
            .map(|x| x.weight())
            .collect();
        let d: Vec<f64> = desc
            .enumerate(AnyKAlgorithm::Lazy)
            .map(|x| x.weight())
            .collect();
        let mut a_rev = a.clone();
        a_rev.reverse();
        assert_eq!(a_rev, d);
    }

    #[test]
    fn bottleneck_ranking_minimises_maximum_tuple_weight() {
        let db = path_db();
        let q = QueryBuilder::path(2).build();
        let rq = RankedQuery::with_ranking(&db, &q, RankingFunction::BottleneckAscending).unwrap();
        let all: Vec<Answer> = rq.enumerate(AnyKAlgorithm::Take2).collect();
        // Bottlenecks: (1,10)+(10,5): max(1,2)=2; (2,20)+(20,6): max(4,1)=4;
        // (3,10)+(10,5): max(9,2)=9.
        assert_eq!(
            all.iter().map(Answer::weight).collect::<Vec<_>>(),
            vec![2.0, 4.0, 9.0]
        );
    }

    #[test]
    fn all_algorithms_agree_on_acyclic_queries() {
        let db = path_db();
        let q = QueryBuilder::path(2).build();
        let rq = RankedQuery::new(&db, &q).unwrap();
        let reference: Vec<Vec<Value>> = rq
            .enumerate(AnyKAlgorithm::Batch)
            .map(|a| a.values().to_vec())
            .collect();
        for alg in AnyKAlgorithm::ALL {
            let got: Vec<Vec<Value>> = rq.enumerate(alg).map(|a| a.values().to_vec()).collect();
            assert_eq!(got, reference, "algorithm {alg}");
        }
    }

    #[test]
    fn four_cycle_is_decomposed_and_ranked() {
        let db = cycle_db(8);
        let q = QueryBuilder::cycle(4).build();
        let rq = RankedQuery::new(&db, &q).unwrap();
        assert!(rq.is_decomposed());
        let answers: Vec<Answer> = rq.enumerate(AnyKAlgorithm::Take2).collect();
        assert!(!answers.is_empty());
        // Ranked order.
        for w in answers.windows(2) {
            assert!(w[0].weight() <= w[1].weight() + 1e-9);
        }
        // Same multiset of answers from every algorithm.
        let mut reference: Vec<(Vec<Value>, i64)> = answers
            .iter()
            .map(|a| (a.values().to_vec(), (a.weight() * 1000.0).round() as i64))
            .collect();
        reference.sort();
        for alg in AnyKAlgorithm::ALL {
            let mut got: Vec<(Vec<Value>, i64)> = rq
                .enumerate(alg)
                .map(|a| (a.values().to_vec(), (a.weight() * 1000.0).round() as i64))
                .collect();
            got.sort();
            assert_eq!(got, reference, "algorithm {alg}");
        }
    }

    #[test]
    fn triangle_query_is_rejected() {
        let mut db = Database::new();
        for i in 1..=3 {
            let mut r = Relation::new(format!("R{i}"), 2);
            r.push_edge(1, 2, 1.0);
            db.add(r);
        }
        let q = QueryBuilder::cycle(3).build();
        assert!(matches!(
            RankedQuery::new(&db, &q),
            Err(EngineError::UnsupportedCyclicQuery(_))
        ));
    }
}
