//! The simple-cycle decomposition (§5.3.1).
//!
//! An ℓ-cycle query `QCℓ(x) :- R1(x1,x2), …, Rℓ(xℓ,x1)` is cyclic, so no join
//! tree exists. Following Alon–Yuster–Zwick and the paper's §5.3.1, the input
//! is partitioned by the first relation whose tuple is *heavy* (its cycle
//! attribute value occurs at least `n^{2/ℓ}` times), yielding ℓ "heavy"
//! partitions plus one "all-light" partition. Every partition admits an
//! acyclic query over **materialised bags** of size `O(n^{2−2/ℓ})`:
//!
//! * the heavy partition broken at attribute `A_i` uses a chain of ℓ−2 bags
//!   `(A_i, A_{i+m+1}, A_{i+m+2})`, each containing the heavy `A_i` values
//!   combined with one original relation (two for the first and last bag);
//! * the all-light partition uses two bags, each a chain join of ℓ/2 light
//!   relations.
//!
//! Each original relation's weight is accounted for in **exactly one** bag
//! (the lineage bookkeeping of §5.3), so the sum of bag weights equals the
//! original witness weight, and the partitions produce **disjoint** outputs,
//! so the UT-DP union needs no duplicate elimination.

use crate::error::EngineError;
use anyk_query::{Atom, ConjunctiveQuery};
use anyk_storage::stats::{heavy_threshold, ColumnStats};
use anyk_storage::{Database, Relation, Tuple, Value};

/// One acyclic sub-problem of the decomposition: a database of materialised
/// bag relations and the acyclic query joining them. The bag tuples' weights
/// are already in the engine's *encoded* weight space.
#[derive(Debug, Clone)]
pub struct DecomposedTree {
    /// Bag relations for this partition.
    pub database: Database,
    /// The acyclic query over the bags. Its variables are the original cycle
    /// variables, so answers project directly onto the original head.
    pub query: ConjunctiveQuery,
    /// Human-readable partition label (e.g. `"heavy(R2)"` or `"all-light"`).
    pub label: String,
}

/// The cycle structure of a query: the atoms in cyclic order together with
/// their orientation, and the cycle variables in order.
#[derive(Debug, Clone)]
pub struct CycleShape {
    /// `(atom index, flipped)` in cycle order; `flipped` means the atom's
    /// variables are `(A_{j+1}, A_j)` instead of `(A_j, A_{j+1})`.
    pub atoms: Vec<(usize, bool)>,
    /// The cycle variables `A_0 … A_{ℓ−1}` in cycle order.
    pub variables: Vec<String>,
}

impl CycleShape {
    /// The cycle length ℓ.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the cycle is empty (never true for a detected shape).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

/// Detect whether `query` is a simple cycle: all atoms binary, every variable
/// shared by exactly two atoms, and the atoms form one cycle of length ≥ 3.
pub fn detect_simple_cycle(query: &ConjunctiveQuery) -> Option<CycleShape> {
    let atoms = query.atoms();
    let ell = atoms.len();
    if ell < 3 {
        return None;
    }
    for a in atoms {
        if a.arity() != 2 || a.variables[0] == a.variables[1] {
            return None;
        }
    }
    // Every variable must occur in exactly two atoms.
    let vars = query.variables();
    if vars.len() != ell {
        return None;
    }
    for v in &vars {
        if atoms.iter().filter(|a| a.binds(v)).count() != 2 {
            return None;
        }
    }
    // Walk the cycle starting from atom 0 in its given orientation.
    let mut order: Vec<(usize, bool)> = vec![(0, false)];
    let mut cycle_vars: Vec<String> = vec![atoms[0].variables[0].clone()];
    let mut current_var = atoms[0].variables[1].clone();
    let mut used = vec![false; ell];
    used[0] = true;
    for _ in 1..ell {
        cycle_vars.push(current_var.clone());
        let (next_idx, next_atom) = atoms
            .iter()
            .enumerate()
            .find(|(i, a)| !used[*i] && a.binds(&current_var))?;
        used[next_idx] = true;
        let flipped = next_atom.variables[1] == current_var;
        order.push((next_idx, flipped));
        current_var = if flipped {
            next_atom.variables[0].clone()
        } else {
            next_atom.variables[1].clone()
        };
    }
    // The walk must close the cycle back at the starting variable.
    if current_var != atoms[0].variables[0] {
        return None;
    }
    Some(CycleShape {
        atoms: order,
        variables: cycle_vars,
    })
}

/// A relation of the cycle, re-oriented so column 0 is its cycle attribute
/// `A_j` and column 1 is `A_{j+1}`, with encoded weights. Built column-wise
/// (one pass per source column) into the scratch database's naming scheme.
fn oriented_relation(
    db: &Database,
    query: &ConjunctiveQuery,
    shape: &CycleShape,
    j: usize,
    encode: &impl Fn(f64) -> f64,
) -> Relation {
    let (atom_idx, flipped) = shape.atoms[j];
    let atom = &query.atoms()[atom_idx];
    let source = db.expect(&atom.relation);
    let (from, to) = if flipped { (1, 0) } else { (0, 1) };
    let mut out = Relation::with_capacity(oriented_name(j), 2, source.len());
    for (tid, &a) in source.column(from).iter().enumerate() {
        out.push_row(
            &[a, source.column(to)[tid]],
            encode(source.tuple(tid).weight()),
        );
    }
    out
}

/// Scratch-database relation names for the decomposition's partitions.
fn oriented_name(j: usize) -> String {
    format!("oriented_{j}")
}
fn heavy_name(j: usize) -> String {
    format!("heavy_{j}")
}
fn light_name(j: usize) -> String {
    format!("light_{j}")
}

/// Decompose a simple ℓ-cycle query (ℓ ≥ 4) into ℓ + 1 acyclic sub-problems.
///
/// `encode` maps input weights into the engine's internal weight space and
/// `combine` aggregates two weights (`+` for sum rankings, `max` for the
/// bottleneck ranking).
pub fn decompose(
    db: &Database,
    query: &ConjunctiveQuery,
    encode: impl Fn(f64) -> f64,
    combine: impl Fn(f64, f64) -> f64 + Copy,
) -> Result<Vec<DecomposedTree>, EngineError> {
    let shape = detect_simple_cycle(query)
        .ok_or_else(|| EngineError::UnsupportedCyclicQuery(query.to_string()))?;
    let ell = shape.len();
    if ell < 4 {
        // The decomposition gives no benefit for triangles (§7.2); callers
        // should use the WCOJ fallback.
        return Err(EngineError::UnsupportedCyclicQuery(query.to_string()));
    }

    // Re-orient all relations so that relation j is over (A_j, A_{j+1}). The
    // oriented copies and their heavy/light splits live in a scratch database
    // so that the indexes the partitions request repeatedly (each heavy tree
    // indexes the same oriented/light relations by the same key) are built
    // once and then served from the database's index cache.
    let mut scratch = Database::new();
    for j in 0..ell {
        scratch.add(oriented_relation(db, query, &shape, j, &encode));
    }
    let n = scratch.relations().map(Relation::len).max().unwrap_or(0);
    let threshold = heavy_threshold(n, ell);

    // Heavy value sets and heavy/light splits, per relation, on column 0 (A_j).
    let stats: Vec<ColumnStats> = (0..ell)
        .map(|j| ColumnStats::compute(scratch.expect(&oriented_name(j)), 0))
        .collect();
    let splits: Vec<Relation> = stats
        .iter()
        .enumerate()
        .flat_map(|(j, s)| {
            let r = scratch.expect(&oriented_name(j));
            [
                r.filter(heavy_name(j), |t| s.is_heavy(t.value(0), threshold)),
                r.filter(light_name(j), |t| !s.is_heavy(t.value(0), threshold)),
            ]
        })
        .collect();
    for split in splits {
        scratch.add(split);
    }

    let mut trees = Vec::with_capacity(ell + 1);
    for (i, heavy_stats) in stats.iter().enumerate() {
        if scratch.expect(&heavy_name(i)).is_empty() {
            continue; // empty partition: contributes no answers
        }
        // Partition T_i: relations before i are light, relation i is heavy,
        // relations after i are unrestricted.
        let part = |j: usize| -> String {
            if j < i {
                light_name(j)
            } else if j == i {
                heavy_name(i)
            } else {
                oriented_name(j)
            }
        };
        let label = format!("heavy({})", query.atoms()[shape.atoms[i].0].relation);
        if let Some(tree) = build_heavy_tree(
            &scratch,
            &shape,
            i,
            part,
            heavy_stats,
            threshold,
            combine,
            &label,
        ) {
            trees.push(tree);
        }
    }
    if let Some(tree) = build_light_tree(&scratch, &shape, combine) {
        trees.push(tree);
    }
    Ok(trees)
}

/// Build the heavy tree of partition `i` as a chain of ℓ−2 bags. `part` maps
/// an absolute cycle position to its partition relation's name within
/// `scratch`, whose index cache serves the repeated per-partition indexes.
#[allow(clippy::too_many_arguments)]
fn build_heavy_tree(
    scratch: &Database,
    shape: &CycleShape,
    i: usize,
    part: impl Fn(usize) -> String,
    heavy_stats: &ColumnStats,
    threshold: usize,
    combine: impl Fn(f64, f64) -> f64 + Copy,
    label: &str,
) -> Option<DecomposedTree> {
    let ell = shape.len();
    let var = |k: usize| shape.variables[(i + k) % ell].clone();
    let rel_name = |k: usize| part((i + k) % ell);
    let heavy_values: Vec<Value> = heavy_stats.heavy_values(threshold);

    let mut database = Database::new();
    let mut atoms = Vec::new();

    for m in 0..ell - 2 {
        let bag_name = format!("bag{m}");
        let mut bag = Relation::new(bag_name.clone(), 3);
        if m == 0 {
            // (A_i, A_{i+1}, A_{i+2}) = S_0 ⋈ S_1 (S_0 is the heavy split).
            let s1 = scratch.expect(&rel_name(1));
            let idx = scratch.index(&rel_name(1), &[0]);
            for (_, t0) in scratch.expect(&rel_name(0)).iter() {
                for &tid in idx.lookup1(t0.value(1)) {
                    let t1 = s1.tuple(tid);
                    bag.push_row(
                        &[t0.value(0), t0.value(1), t1.value(1)],
                        combine(t0.weight(), t1.weight()),
                    );
                }
            }
        } else if m == ell - 3 {
            // (A_i, A_{i+ℓ-2}, A_{i+ℓ-1}) checking both S_{ℓ-2} and the
            // closing relation S_{ℓ-1}(A_{i+ℓ-1}, A_i).
            let closing = scratch.expect(&rel_name(ell - 1));
            let idx = scratch.index(&rel_name(ell - 1), &[0, 1]);
            let second_last = scratch.expect(&rel_name(ell - 2));
            for &a in &heavy_values {
                for (_, t) in second_last.iter() {
                    for &ctid in idx.lookup(&[t.value(1), a]) {
                        let c = closing.tuple(ctid);
                        bag.push_row(
                            &[a, t.value(0), t.value(1)],
                            combine(t.weight(), c.weight()),
                        );
                    }
                }
            }
        } else {
            // (A_i, A_{i+m+1}, A_{i+m+2}) = heavy values × S_{m+1}.
            let source = scratch.expect(&rel_name(m + 1));
            for &a in &heavy_values {
                for (_, t) in source.iter() {
                    bag.push_row(&[a, t.value(0), t.value(1)], t.weight());
                }
            }
        }
        if bag.is_empty() {
            return None; // this partition produces no answers
        }
        atoms.push(Atom::new(
            bag_name.clone(),
            &[var(0).as_str(), var(m + 1).as_str(), var(m + 2).as_str()],
        ));
        database.add(bag);
    }

    Some(DecomposedTree {
        database,
        query: ConjunctiveQuery::full(atoms),
        label: label.to_string(),
    })
}

/// Build the all-light tree: two bags, each a chain join of roughly ℓ/2
/// light relations (resolved by name from the scratch database).
fn build_light_tree(
    scratch: &Database,
    shape: &CycleShape,
    combine: impl Fn(f64, f64) -> f64 + Copy,
) -> Option<DecomposedTree> {
    let ell = shape.len();
    let h = ell.div_ceil(2);
    let names: Vec<String> = (0..ell).map(light_name).collect();
    // Left bag over A_0..A_h, right bag over A_h..A_{ℓ-1},A_0.
    let left = chain_join(scratch, &names[0..h], combine)?;
    let right = chain_join(scratch, &names[h..ell], combine)?;

    let mut database = Database::new();
    let mut left_rel = Relation::new("light_left", h + 1);
    for t in left {
        left_rel.push(t);
    }
    let mut right_rel = Relation::new("light_right", ell - h + 1);
    for t in right {
        right_rel.push(t);
    }
    if left_rel.is_empty() || right_rel.is_empty() {
        return None;
    }
    database.add(left_rel);
    database.add(right_rel);

    let left_vars: Vec<String> = (0..=h).map(|k| shape.variables[k].clone()).collect();
    let mut right_vars: Vec<String> = (h..ell).map(|k| shape.variables[k].clone()).collect();
    right_vars.push(shape.variables[0].clone());
    let atoms = vec![
        Atom::new(
            "light_left",
            &left_vars.iter().map(String::as_str).collect::<Vec<_>>(),
        ),
        Atom::new(
            "light_right",
            &right_vars.iter().map(String::as_str).collect::<Vec<_>>(),
        ),
    ];
    Some(DecomposedTree {
        database,
        query: ConjunctiveQuery::full(atoms),
        label: "all-light".to_string(),
    })
}

/// Chain-join named binary relations `T_0(A_0,A_1) ⋈ T_1(A_1,A_2) ⋈ …` of
/// the scratch database, producing tuples over `(A_0, …, A_k)` with combined
/// weights. Returns `None` if the name slice is empty. Per-step indexes come
/// from the scratch cache (the heavy trees request the same `light_j` keys).
fn chain_join(
    scratch: &Database,
    names: &[String],
    combine: impl Fn(f64, f64) -> f64 + Copy,
) -> Option<Vec<Tuple>> {
    let first = scratch.expect(names.first()?);
    let mut acc: Vec<Tuple> = first
        .tuples()
        .map(|t| Tuple::new(vec![t.value(0), t.value(1)], t.weight()))
        .collect();
    for name in &names[1..] {
        let rel = scratch.expect(name);
        let idx = scratch.index(name, &[0]);
        let mut next = Vec::new();
        for t in &acc {
            let join_val = *t.values().last().expect("non-empty chain tuple");
            for &tid in idx.lookup1(join_val) {
                let ext = rel.tuple(tid);
                let mut values = t.values().to_vec();
                values.push(ext.value(1));
                next.push(Tuple::new(values, combine(t.weight(), ext.weight())));
            }
        }
        acc = next;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_query::QueryBuilder;

    fn cycle_db(ell: usize, edges: &[(u64, u64, f64)]) -> Database {
        let mut db = Database::new();
        for i in 1..=ell {
            let mut r = Relation::new(format!("R{i}"), 2);
            for &(a, b, w) in edges {
                r.push_edge(a, b, w);
            }
            db.add(r);
        }
        db
    }

    #[test]
    fn detects_canonical_cycles() {
        for ell in [3, 4, 5, 6] {
            let q = QueryBuilder::cycle(ell).build();
            let shape = detect_simple_cycle(&q).expect("cycle shape");
            assert_eq!(shape.len(), ell);
            assert_eq!(shape.variables.len(), ell);
            assert!(shape.atoms.iter().all(|(_, flipped)| !flipped));
        }
    }

    #[test]
    fn detects_reversed_atom_orientation() {
        // R1(x1,x2), R2(x3,x2), R3(x3,x4), R4(x1,x4): still a simple 4-cycle,
        // with atoms 2 and 4 flipped.
        let q = QueryBuilder::new()
            .atom("R1", &["x1", "x2"])
            .atom("R2", &["x3", "x2"])
            .atom("R3", &["x3", "x4"])
            .atom("R4", &["x1", "x4"])
            .build();
        let shape = detect_simple_cycle(&q).expect("cycle shape");
        assert_eq!(shape.len(), 4);
        assert!(shape.atoms.iter().any(|(_, flipped)| *flipped));
    }

    #[test]
    fn rejects_paths_and_stars() {
        assert!(detect_simple_cycle(&QueryBuilder::path(4).build()).is_none());
        assert!(detect_simple_cycle(&QueryBuilder::star(4).build()).is_none());
    }

    #[test]
    fn decomposition_covers_all_witnesses_exactly_once() {
        // A small 4-cycle instance with both heavy and light values:
        // the worst-case construction of §7 (values 0 are heavy hubs).
        let n = 8u64;
        let mut edges = Vec::new();
        for i in 1..=n / 2 {
            edges.push((0, i, i as f64));
            edges.push((i, 0, 10.0 * i as f64));
        }
        let db = cycle_db(4, &edges);
        let q = QueryBuilder::cycle(4).build();
        let trees = decompose(&db, &q, |w| w, |a, b| a + b).unwrap();
        assert!(!trees.is_empty());
        assert!(trees.len() <= 5);
        // Brute-force the cycle output to compare total counts.
        let r = db.expect("R1");
        let mut expected = 0usize;
        for (_, t1) in r.iter() {
            for (_, t2) in db.expect("R2").iter() {
                if t1.value(1) != t2.value(0) {
                    continue;
                }
                for (_, t3) in db.expect("R3").iter() {
                    if t2.value(1) != t3.value(0) {
                        continue;
                    }
                    for (_, t4) in db.expect("R4").iter() {
                        if t3.value(1) == t4.value(0) && t4.value(1) == t1.value(0) {
                            expected += 1;
                        }
                    }
                }
            }
        }
        // Count the decomposed answers by brute-forcing each tree.
        let mut got = 0usize;
        for tree in &trees {
            got += count_tree_answers(&tree.database, &tree.query);
        }
        assert_eq!(got, expected);
        assert!(expected > 0);
    }

    /// Brute-force count of the answers of a 2- or 3-atom acyclic bag query.
    fn count_tree_answers(db: &Database, q: &ConjunctiveQuery) -> usize {
        use std::collections::HashMap;
        let atoms = q.atoms();
        let mut count = 0usize;
        // Enumerate assignments atom by atom (tiny inputs, exponential is fine).
        fn recurse(
            db: &Database,
            atoms: &[Atom],
            idx: usize,
            binding: &mut HashMap<String, Value>,
            count: &mut usize,
        ) {
            if idx == atoms.len() {
                *count += 1;
                return;
            }
            let atom = &atoms[idx];
            let rel = db.expect(&atom.relation);
            'tuples: for (_, t) in rel.iter() {
                let mut newly_bound = Vec::new();
                for (pos, v) in atom.variables.iter().enumerate() {
                    match binding.get(v) {
                        Some(&val) if val != t.value(pos) => {
                            for nb in newly_bound {
                                binding.remove(nb);
                            }
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => {
                            binding.insert(v.clone(), t.value(pos));
                            newly_bound.push(v.as_str());
                        }
                    }
                }
                recurse(db, atoms, idx + 1, binding, count);
                for nb in newly_bound {
                    binding.remove(nb);
                }
            }
        }
        recurse(db, atoms, 0, &mut HashMap::new(), &mut count);
        count
    }

    #[test]
    fn triangle_is_rejected() {
        let db = cycle_db(3, &[(1, 2, 1.0), (2, 3, 1.0), (3, 1, 1.0)]);
        let q = QueryBuilder::cycle(3).build();
        assert!(decompose(&db, &q, |w| w, |a, b| a + b).is_err());
    }

    #[test]
    fn six_cycle_decomposition_produces_trees_with_four_bags() {
        let mut edges = Vec::new();
        for i in 1..=4u64 {
            edges.push((0, i, 1.0));
            edges.push((i, 0, 1.0));
        }
        let db = cycle_db(6, &edges);
        let q = QueryBuilder::cycle(6).build();
        let trees = decompose(&db, &q, |w| w, |a, b| a + b).unwrap();
        for tree in &trees {
            if tree.label.starts_with("heavy") {
                assert_eq!(tree.query.num_atoms(), 4, "6-cycle heavy tree has ℓ-2 bags");
            } else {
                assert_eq!(tree.query.num_atoms(), 2, "light tree has two bags");
            }
            assert!(tree.query.is_acyclic());
        }
    }
}
