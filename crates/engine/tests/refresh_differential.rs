//! Differential suite for delta maintenance: a plan refreshed under a
//! [`DeltaBatch`] must be indistinguishable from recompiling from scratch
//! over the post-delta database — **bit-identical ranked streams** (same
//! weights, same values, same witnesses, same order) across all six any-k
//! algorithms. Weights are random and distinct, so the ranked order is
//! unique and the comparison is exact, not modulo ties.

use anyk_core::AnyKAlgorithm;
use anyk_engine::{PreparedQuery, RankingFunction};
use anyk_query::{ConjunctiveQuery, QueryBuilder};
use anyk_storage::{Database, DeltaBatch, Relation, Tuple, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// Deterministic xorshift64* so failures reproduce.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A source of random weights that are globally distinct, so every ranked
/// stream has exactly one valid order.
struct Weights {
    rng: Rng,
    used: HashSet<u64>,
}

impl Weights {
    fn new(seed: u64) -> Self {
        Weights {
            rng: Rng::new(seed),
            used: HashSet::new(),
        }
    }

    fn next(&mut self) -> f64 {
        loop {
            let raw = self.rng.below(1 << 40);
            if self.used.insert(raw) {
                return raw as f64 / 1024.0;
            }
        }
    }
}

fn path_db(weights: &mut Weights, len: usize, per_relation: usize, fanout: u64) -> Database {
    let mut db = Database::new();
    let mut rng = Rng::new(weights.rng.next());
    for i in 1..=len {
        let mut r = Relation::new(format!("R{i}"), 2);
        for _ in 0..per_relation {
            r.push_edge(rng.below(fanout), rng.below(fanout), weights.next());
        }
        db.add(r);
    }
    db
}

fn star_db(weights: &mut Weights, arms: usize, per_relation: usize, fanout: u64) -> Database {
    let mut db = Database::new();
    let mut rng = Rng::new(weights.rng.next());
    for i in 1..=arms {
        let mut r = Relation::new(format!("R{i}"), 2);
        for _ in 0..per_relation {
            r.push_edge(rng.below(fanout), rng.below(fanout), weights.next());
        }
        db.add(r);
    }
    db
}

/// A random batch over `db`: for each relation, delete a few random tuples
/// and insert a few random ones (keys drawn from the same domain, so some
/// inserts join and some dangle).
fn random_batch(db: &Database, weights: &mut Weights, fanout: u64, edits: usize) -> DeltaBatch {
    let mut rng = Rng::new(weights.rng.next());
    let mut batch = DeltaBatch::new();
    for rel in db.relations() {
        let mut deleted = HashSet::new();
        for _ in 0..edits {
            if !rel.is_empty() {
                let tid = rng.below(rel.len() as u64) as usize;
                if deleted.insert(tid) {
                    batch = batch.delete(rel.name(), tid);
                }
            }
            batch = batch.insert(
                rel.name(),
                Tuple::new(
                    vec![rng.below(fanout) as Value, rng.below(fanout) as Value],
                    weights.next(),
                ),
            );
        }
    }
    batch
}

/// The heart of the suite: refresh must equal rebuild, answer for answer,
/// across every algorithm. Where consecutive answers tie on weight (routine
/// for bottleneck rankings, where the answer weight is one tuple's weight)
/// the tie class is compared as a set — both orders are valid ranked
/// streams, and a patched successor list may break the tie differently than
/// a rebuilt one. With distinct random weights the sum rankings never tie,
/// so there the comparison degenerates to exact bit-identity.
fn assert_streams_bit_identical(refreshed: &Arc<PreparedQuery>, rebuilt: &Arc<PreparedQuery>) {
    assert_eq!(refreshed.count_answers(), rebuilt.count_answers());
    for alg in AnyKAlgorithm::ALL {
        let a: Vec<_> = refreshed.enumerate(alg).collect();
        let b: Vec<_> = rebuilt.enumerate(alg).collect();
        assert_eq!(
            a.len(),
            b.len(),
            "{alg}: refreshed stream length diverged from rebuild"
        );
        let mut i = 0;
        while i < a.len() {
            // The end of the weight-tie class starting at `i` (usually i+1).
            let mut j = i + 1;
            while j < a.len() && a[j].weight() == a[i].weight() {
                j += 1;
            }
            let key =
                |x: &anyk_engine::Answer| (x.values().to_vec(), x.witness().to_vec(), x.weight());
            let mut ra: Vec<_> = a[i..j].iter().map(key).collect();
            let mut rb: Vec<_> = b[i..j].iter().map(key).collect();
            ra.sort_by(|x, y| x.partial_cmp(y).unwrap());
            rb.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(
                ra,
                rb,
                "{alg}: answers {i}..{j} diverged beyond tie order \
                 (refreshed {:?} vs rebuilt {:?})",
                &a[i..j],
                &b[i..j]
            );
            i = j;
        }
    }
}

/// Run `rounds` sequential deltas over `db`, refreshing one plan chain and
/// rebuilding from scratch at every step.
fn differential_rounds(
    db: Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
    weights: &mut Weights,
    fanout: u64,
    rounds: usize,
    edits: usize,
) {
    let mut snapshot = Arc::new(db);
    let mut maintained =
        Arc::new(PreparedQuery::prepare_delta(Arc::clone(&snapshot), query, ranking).unwrap());
    assert!(maintained.supports_refresh());
    for round in 0..rounds {
        let batch = random_batch(&snapshot, weights, fanout, edits);
        let next = Arc::new(snapshot.apply_delta(&batch).unwrap());
        assert_eq!(next.generation(), snapshot.generation() + 1);
        maintained = Arc::new(
            maintained
                .refresh(Arc::clone(&next), &batch)
                .unwrap_or_else(|e| panic!("round {round}: refresh failed: {e}")),
        );
        let rebuilt = Arc::new(PreparedQuery::prepare(Arc::clone(&next), query, ranking).unwrap());
        assert_streams_bit_identical(&maintained, &rebuilt);
        snapshot = next;
    }
}

#[test]
fn path_sum_ascending_matches_rebuild_across_rounds() {
    let mut weights = Weights::new(0xA11CE);
    let db = path_db(&mut weights, 3, 40, 12);
    let q = QueryBuilder::path(3).build();
    differential_rounds(
        db,
        &q,
        RankingFunction::SumAscending,
        &mut weights,
        12,
        4,
        6,
    );
}

#[test]
fn path_sum_descending_matches_rebuild_across_rounds() {
    let mut weights = Weights::new(0xB0B);
    let db = path_db(&mut weights, 3, 30, 10);
    let q = QueryBuilder::path(3).build();
    differential_rounds(
        db,
        &q,
        RankingFunction::SumDescending,
        &mut weights,
        10,
        3,
        5,
    );
}

#[test]
fn path_bottleneck_matches_rebuild_across_rounds() {
    let mut weights = Weights::new(0xCAFE);
    let db = path_db(&mut weights, 4, 25, 8);
    let q = QueryBuilder::path(4).build();
    differential_rounds(
        db,
        &q,
        RankingFunction::BottleneckAscending,
        &mut weights,
        8,
        3,
        5,
    );
}

#[test]
fn star_sum_matches_rebuild_across_rounds() {
    let mut weights = Weights::new(0x57A7);
    let db = star_db(&mut weights, 3, 30, 6);
    let q = QueryBuilder::star(3).build();
    differential_rounds(db, &q, RankingFunction::SumAscending, &mut weights, 6, 4, 5);
}

#[test]
fn delete_only_and_insert_only_batches_match_rebuild() {
    let mut weights = Weights::new(0xDEAD);
    let db = path_db(&mut weights, 2, 20, 6);
    let q = QueryBuilder::path(2).build();
    let snapshot = Arc::new(db);
    let plan = Arc::new(
        PreparedQuery::prepare_delta(Arc::clone(&snapshot), &q, RankingFunction::SumAscending)
            .unwrap(),
    );

    // Delete-only: wipe a prefix of R1.
    let mut batch = DeltaBatch::new();
    for tid in 0..5 {
        batch = batch.delete("R1", tid);
    }
    let next = Arc::new(snapshot.apply_delta(&batch).unwrap());
    let refreshed = Arc::new(plan.refresh(Arc::clone(&next), &batch).unwrap());
    let rebuilt = Arc::new(
        PreparedQuery::prepare(Arc::clone(&next), &q, RankingFunction::SumAscending).unwrap(),
    );
    assert_streams_bit_identical(&refreshed, &rebuilt);

    // Insert-only on top: new keys on both sides, including a key that only
    // ever existed on the child side (semi-join dropped until now).
    let mut batch2 = DeltaBatch::new();
    for v in 100..106 {
        batch2 = batch2.insert("R1", Tuple::new(vec![v, v + 1], weights.next()));
        batch2 = batch2.insert("R2", Tuple::new(vec![v + 1, v + 2], weights.next()));
    }
    let next2 = Arc::new(next.apply_delta(&batch2).unwrap());
    let refreshed2 = Arc::new(refreshed.refresh(Arc::clone(&next2), &batch2).unwrap());
    let rebuilt2 = Arc::new(
        PreparedQuery::prepare(Arc::clone(&next2), &q, RankingFunction::SumAscending).unwrap(),
    );
    assert_streams_bit_identical(&refreshed2, &rebuilt2);
}

#[test]
fn orphaned_join_key_reconnects_when_a_parent_returns() {
    // R1 = {(1, 7)} joins R2 = {(7, 3), (7, 4)}. Deleting the R1 tuple
    // orphans key 7's value node; re-inserting a parent with key 7 must
    // reconnect the *existing* child states, not duplicate them.
    let mut db = Database::new();
    let mut r1 = Relation::new("R1", 2);
    r1.push_edge(1, 7, 1.0);
    let mut r2 = Relation::new("R2", 2);
    r2.push_edge(7, 3, 2.0);
    r2.push_edge(7, 4, 4.0);
    db.add(r1);
    db.add(r2);
    let q = QueryBuilder::path(2).build();
    let snapshot = Arc::new(db);
    let plan = Arc::new(
        PreparedQuery::prepare_delta(Arc::clone(&snapshot), &q, RankingFunction::SumAscending)
            .unwrap(),
    );

    let kill = DeltaBatch::new().delete("R1", 0);
    let empty_snap = Arc::new(snapshot.apply_delta(&kill).unwrap());
    let emptied = Arc::new(plan.refresh(Arc::clone(&empty_snap), &kill).unwrap());
    assert_eq!(emptied.count_answers(), 0);

    let revive = DeltaBatch::new().insert("R1", Tuple::new(vec![2, 7], 0.5));
    let revived_snap = Arc::new(empty_snap.apply_delta(&revive).unwrap());
    let revived = Arc::new(emptied.refresh(Arc::clone(&revived_snap), &revive).unwrap());
    let rebuilt = Arc::new(
        PreparedQuery::prepare(Arc::clone(&revived_snap), &q, RankingFunction::SumAscending)
            .unwrap(),
    );
    assert_streams_bit_identical(&revived, &rebuilt);
    assert_eq!(revived.count_answers(), 2);
}

#[test]
fn refresh_without_delta_support_is_a_typed_error() {
    let mut weights = Weights::new(3);
    let db = path_db(&mut weights, 2, 5, 4);
    let q = QueryBuilder::path(2).build();
    let snapshot = Arc::new(db);
    let plan =
        PreparedQuery::prepare(Arc::clone(&snapshot), &q, RankingFunction::SumAscending).unwrap();
    assert!(!plan.supports_refresh());
    let batch = DeltaBatch::new().insert("R1", Tuple::new(vec![1, 2], 9.0));
    let next = Arc::new(snapshot.apply_delta(&batch).unwrap());
    assert!(matches!(
        plan.refresh(next, &batch),
        Err(anyk_engine::EngineError::RefreshUnsupported(_))
    ));
}

#[test]
fn mismatched_snapshot_is_rejected_not_miscomputed() {
    let mut weights = Weights::new(4);
    let db = path_db(&mut weights, 2, 10, 4);
    let q = QueryBuilder::path(2).build();
    let snapshot = Arc::new(db);
    let plan = Arc::new(
        PreparedQuery::prepare_delta(Arc::clone(&snapshot), &q, RankingFunction::SumAscending)
            .unwrap(),
    );
    let batch = DeltaBatch::new().delete("R1", 0);
    let other = batch.clone().delete("R1", 1);
    // Apply a *different* batch to the database than the one handed to
    // refresh: the tuple counts no longer line up.
    let next = Arc::new(snapshot.apply_delta(&other).unwrap());
    assert!(matches!(
        plan.refresh(next, &batch),
        Err(anyk_engine::EngineError::Internal(_))
    ));
}
