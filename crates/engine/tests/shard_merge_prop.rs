//! Property tests for sharded enumeration: for random databases and random
//! shard counts, the hash-partitioned per-shard T-DP merged through the
//! ranked union must reproduce the unsharded stream — across all six any-k
//! algorithms, with shard counts exceeding the number of distinct shard-key
//! values (empty shards) and with deliberately tied weights.

use std::sync::Arc;

use anyk_core::AnyKAlgorithm;
use anyk_engine::{Answer, PrepareOptions, PreparedQuery, RankingFunction, ShardedPreparedQuery};
use anyk_query::QueryBuilder;
use anyk_storage::{Database, Relation, Value};
use proptest::prelude::*;

/// xorshift64* — the same deterministic generator the unit tests use, so
/// failures reproduce from (rows, seed) alone.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A two-hop path instance. `tie_every` folds weights into a small set of
/// buckets so ties occur across shards; `0` keeps them globally distinct.
fn path_db(rows: u64, seed: u64, tie_every: u64) -> Arc<Database> {
    let mut rng = Rng(seed | 1);
    let mut used = std::collections::HashSet::new();
    let mut weight = |rng: &mut Rng| loop {
        let w = rng.next() % 1_000_000;
        if tie_every > 0 {
            return (w % tie_every) as f64 / 8.0;
        }
        if used.insert(w) {
            return w as f64 / 64.0;
        }
    };
    let mut db = Database::new();
    let mut r1 = Relation::new("R1", 2);
    let mut r2 = Relation::new("R2", 2);
    for i in 0..rows {
        let w1 = weight(&mut rng);
        r1.push_edge(i, i % 13, w1);
        let w2 = weight(&mut rng);
        r2.push_edge(i % 13, i, w2);
        if i % 3 == 0 {
            let w3 = weight(&mut rng);
            r2.push_edge(i % 13, i + rows, w3);
        }
    }
    db.add(r1);
    db.add(r2);
    Arc::new(db)
}

/// Drain a sharded cursor page by page.
fn drain(sharded: &Arc<ShardedPreparedQuery>, alg: AnyKAlgorithm, page_size: usize) -> Vec<Answer> {
    let mut cursor = sharded.cursor(alg);
    let mut merged = Vec::new();
    loop {
        let page = cursor.next_page(page_size);
        merged.extend(page.answers);
        if page.done {
            break;
        }
    }
    merged
}

/// Order-insensitive fingerprint for tie robustness: weight bits plus values.
fn fingerprint(answers: &[Answer]) -> Vec<(u64, Vec<Value>)> {
    let mut keys: Vec<(u64, Vec<Value>)> = answers
        .iter()
        .map(|a| (a.weight().to_bits(), a.values().to_vec()))
        .collect();
    keys.sort();
    keys
}

proptest! {
    // Each case prepares 1 + 1 plans and enumerates 6 algorithms, so keep
    // the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Distinct weights: the merged stream is bit-identical to the
    /// unsharded stream for every algorithm, including shard counts larger
    /// than the 13 distinct shard-key values (some shards empty).
    #[test]
    fn sharded_stream_is_bit_identical_for_random_dbs(
        rows in 4u64..48,
        seed in 1u64..1 << 48,
        shards in 1usize..17,
        page_idx in 0usize..3,
    ) {
        let page_size = [1usize, 5, 1000][page_idx];
        let db = path_db(rows, seed, 0);
        let query = QueryBuilder::path(2).build();
        let flat = PreparedQuery::prepare(
            Arc::clone(&db), &query, RankingFunction::SumAscending,
        ).unwrap();
        let sharded = Arc::new(ShardedPreparedQuery::prepare(
            Arc::clone(&db), &query, RankingFunction::SumAscending,
            shards, PrepareOptions::default(),
        ).unwrap());
        prop_assert_eq!(sharded.count_answers(), flat.count_answers());
        for alg in AnyKAlgorithm::ALL {
            let reference: Vec<Answer> = flat.enumerate(alg).collect();
            let merged = drain(&sharded, alg, page_size);
            prop_assert_eq!(&merged, &reference, "algorithm {}", alg);
        }
    }

    /// Tied weights across shards: the ranked weight sequence and the
    /// answer multiset still agree (order within a tie is the merge's
    /// value-ordered choice, so bitwise stream equality is not required).
    #[test]
    fn tied_weights_preserve_weight_sequence_and_answer_set(
        rows in 4u64..32,
        seed in 1u64..1 << 48,
        shards in 2usize..9,
        tie_every in 1u64..5,
    ) {
        let db = path_db(rows, seed, tie_every);
        let query = QueryBuilder::path(2).build();
        let flat = PreparedQuery::prepare(
            Arc::clone(&db), &query, RankingFunction::SumAscending,
        ).unwrap();
        let sharded = Arc::new(ShardedPreparedQuery::prepare(
            Arc::clone(&db), &query, RankingFunction::SumAscending,
            shards, PrepareOptions::default(),
        ).unwrap());
        for alg in AnyKAlgorithm::ALL {
            let reference: Vec<Answer> = flat.enumerate(alg).collect();
            let merged = drain(&sharded, alg, 7);
            let ref_weights: Vec<u64> =
                reference.iter().map(|a| a.weight().to_bits()).collect();
            let got_weights: Vec<u64> =
                merged.iter().map(|a| a.weight().to_bits()).collect();
            prop_assert_eq!(&got_weights, &ref_weights, "weight sequence, {}", alg);
            prop_assert_eq!(
                fingerprint(&merged),
                fingerprint(&reference),
                "answer multiset, {}",
                alg
            );
        }
    }
}
