//! Contention smoke tests for the sharded `RwLock` index cache: many scoped
//! threads probing the same database concurrently. On a multi-core runner
//! the read path genuinely overlaps; on any machine these tests assert the
//! cache stays consistent (one shared index per key, bound respected,
//! counters coherent) under concurrent access.

use anyk_storage::{Database, Relation};
use std::sync::Arc;

fn db_with_relations(relations: usize, rows: u64) -> Database {
    let mut db = Database::new();
    for r in 0..relations {
        let mut rel = Relation::new(format!("R{r}"), 2);
        for i in 0..rows {
            rel.push_edge(i, i + 1, 0.0);
        }
        db.add(rel);
    }
    db
}

#[test]
fn many_threads_probe_the_same_index_concurrently() {
    let db = Arc::new(db_with_relations(1, 512));
    let threads = 16;
    let probes = 200;
    let indexes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    let mut last = None;
                    for _ in 0..probes {
                        let idx = db.index("R0", &[0]);
                        assert_eq!(idx.lookup1(17), &[17]);
                        last = Some(idx);
                    }
                    last.unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Every thread converged on one shared index (at most one rebuild race
    // at startup; after it resolves all requests hit the same Arc).
    let first = &indexes[0];
    assert!(indexes.iter().all(|i| Arc::ptr_eq(i, first)));
    let stats = db.index_cache_stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(
        stats.hits + stats.misses,
        (threads * probes) as u64,
        "every probe is counted exactly once"
    );
    assert!(stats.hits >= (threads * probes - threads) as u64);
}

#[test]
fn concurrent_probes_over_many_keys_respect_the_lru_bound() {
    let mut db = db_with_relations(6, 64);
    db.set_index_cache_capacity(4);
    let db = Arc::new(db);
    let threads = 12;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = Arc::clone(&db);
            scope.spawn(move || {
                for round in 0..100 {
                    let r = (t + round) % 6;
                    let col = (t + round / 2) % 2;
                    let idx = db.index(&format!("R{r}"), &[col]);
                    // Key column `col` holds i (col 0) or i+1 (col 1).
                    assert_eq!(idx.lookup1(5), &[(5 - col as u64) as usize]);
                }
            });
        }
    });
    let stats = db.index_cache_stats();
    assert!(
        stats.entries <= 4,
        "bound holds under contention: {} entries",
        stats.entries
    );
    assert!(
        stats.evictions > 0,
        "12 distinct keys through a 4-slot cache"
    );
    assert_eq!(stats.hits + stats.misses, (threads * 100) as u64);
}
