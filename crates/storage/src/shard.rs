//! Hash partitioning: splitting a [`Database`] into co-partitioned shards.
//!
//! A [`ShardSpec`] names the relations to partition and, per relation, the
//! key columns to hash. [`Database::partition`] then produces one database
//! per shard in which
//!
//! * every **partitioned** relation holds exactly the tuples whose key
//!   columns hash to that shard, in their original relative order;
//! * every **other** relation is replicated by `Arc`-sharing the columnar
//!   data (no copy);
//! * schemas — and therefore column dictionaries — are shared with the
//!   source, so shard-local encodings stay join- and decode-compatible;
//! * the source's generation id is propagated, so generation-keyed caches
//!   distinguish shard snapshots across rotations exactly like the
//!   unsharded database.
//!
//! The routing function is a deterministic mix of the key column values
//! ([`ShardSpec::shard_of`]): independent of process, thread count, and
//! insertion order, so a [`DeltaBatch`] split today routes a tuple to the
//! same shard its siblings landed in at partition time
//! ([`ShardSpec::split_batch`]). **Co-partitioning** is the invariant the
//! engine builds on: when every relation that binds a join variable is
//! partitioned on the columns binding it, all tuples that can join on one
//! value of that variable land in the same shard, so per-shard answer
//! streams are disjoint and their union is the unsharded answer set.

use crate::delta::{DeltaBatch, DeltaError, RelationDelta};
use crate::relation::Relation;
use crate::tuple::{TupleId, Value};
use crate::Database;

/// How to split a database into hash shards: the shard count plus, per
/// partitioned relation, the key columns whose values route each tuple.
/// Relations not listed are replicated to every shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    shards: usize,
    /// `(relation name, key columns)`, one entry per partitioned relation.
    partitioned: Vec<(String, Vec<usize>)>,
}

/// Why a [`ShardSpec`] cannot be applied to a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The spec partitions a relation the database does not have.
    UnknownRelation(String),
    /// A key column is past the relation's arity.
    ColumnOutOfRange {
        /// The partitioned relation.
        relation: String,
        /// The out-of-range key column.
        column: usize,
        /// The relation's arity.
        arity: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::UnknownRelation(name) => {
                write!(f, "shard spec partitions unknown relation `{name}`")
            }
            ShardError::ColumnOutOfRange {
                relation,
                column,
                arity,
            } => write!(
                f,
                "shard spec hashes column {column} of `{relation}`, which has arity {arity}"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// SplitMix64 finalizer: a fast, well-mixed 64-bit permutation. Fixed
/// constants, no process-local state — routing must be reproducible across
/// runs so delta batches keep landing where the base partition put their
/// join partners.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ShardSpec {
    /// A spec with `shards` shards (clamped to ≥ 1) and no partitioned
    /// relations yet.
    pub fn new(shards: usize) -> Self {
        ShardSpec {
            shards: shards.max(1),
            partitioned: Vec::new(),
        }
    }

    /// Builder-style: partition `relation` by hashing `columns`. Listing a
    /// relation twice replaces its columns.
    pub fn partition_by(mut self, relation: impl Into<String>, columns: Vec<usize>) -> Self {
        let relation = relation.into();
        if let Some(entry) = self
            .partitioned
            .iter_mut()
            .find(|(name, _)| *name == relation)
        {
            entry.1 = columns;
        } else {
            self.partitioned.push((relation, columns));
        }
        self
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The key columns `relation` is partitioned on, or `None` if it is
    /// replicated.
    pub fn columns_for(&self, relation: &str) -> Option<&[usize]> {
        self.partitioned
            .iter()
            .find(|(name, _)| name == relation)
            .map(|(_, cols)| cols.as_slice())
    }

    /// Every `(relation, key columns)` pair the spec partitions.
    pub fn partitioned(&self) -> &[(String, Vec<usize>)] {
        &self.partitioned
    }

    /// The shard the key values `keys` route to. The hash folds the values
    /// in column order, so two relations partitioned on columns that bind
    /// the same join variable agree on the shard of every joinable pair.
    pub fn shard_of(&self, keys: impl IntoIterator<Item = Value>) -> usize {
        let mut h = 0xA0B7_2594_8F1C_55D3u64;
        for v in keys {
            h = mix(h ^ mix(v));
        }
        (h % self.shards as u64) as usize
    }

    /// The shard a full row of `relation` routes to: `Some(shard)` for a
    /// partitioned relation, `None` for a replicated one.
    pub fn route_row(&self, relation: &str, values: &[Value]) -> Option<usize> {
        let cols = self.columns_for(relation)?;
        Some(self.shard_of(cols.iter().map(|&c| values[c])))
    }

    /// The shard of every tuple of `rel`, in tuple-id order, or `None` if
    /// the relation is replicated.
    pub fn route_relation(&self, rel: &Relation) -> Option<Vec<usize>> {
        let cols = self.columns_for(rel.name())?;
        let mut out = Vec::with_capacity(rel.len());
        for id in 0..rel.len() {
            out.push(self.shard_of(cols.iter().map(|&c| rel.column(c)[id])));
        }
        Some(out)
    }

    /// Per shard, the **global** tuple ids of `rel` that land in it, in
    /// order — i.e. shard-local id `i` of shard `s` is global id
    /// `maps[s][i]`. `None` for a replicated relation (local ids are global
    /// ids there). Engines carrying tuple ids across a partition use this
    /// to translate shard-local ids back to the unsharded id space.
    pub fn tid_maps(&self, rel: &Relation) -> Option<Vec<Vec<TupleId>>> {
        let routes = self.route_relation(rel)?;
        let mut maps = vec![Vec::new(); self.shards];
        for (tid, &shard) in routes.iter().enumerate() {
            maps[shard].push(tid);
        }
        Some(maps)
    }

    /// Check the spec against `db`: every partitioned relation must exist
    /// and every key column must be in range.
    pub fn validate(&self, db: &Database) -> Result<(), ShardError> {
        for (name, cols) in &self.partitioned {
            let rel = db
                .get(name)
                .ok_or_else(|| ShardError::UnknownRelation(name.clone()))?;
            for &c in cols {
                if c >= rel.arity() {
                    return Err(ShardError::ColumnOutOfRange {
                        relation: name.clone(),
                        column: c,
                        arity: rel.arity(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Split `batch` into one batch per shard, routed consistently with
    /// [`Database::partition`] over `db` (the **pre-delta** snapshot):
    ///
    /// * inserts into a partitioned relation go to the shard their key
    ///   columns hash to;
    /// * deletes are translated from global tuple ids to shard-local ids by
    ///   replaying the routing over the current relation;
    /// * edits to replicated relations are copied into every shard's batch.
    ///
    /// Relative order within each shard's delta matches the global batch,
    /// so applying shard batch `s` to shard database `s` yields exactly the
    /// partition of the globally delta-applied database.
    pub fn split_batch(
        &self,
        db: &Database,
        batch: &DeltaBatch,
    ) -> Result<Vec<DeltaBatch>, DeltaError> {
        let mut out = vec![DeltaBatch::new(); self.shards];
        for delta in &batch.relations {
            let rel = db
                .get(&delta.relation)
                .ok_or_else(|| DeltaError::UnknownRelation(delta.relation.clone()))?;
            let Some(cols) = self.columns_for(&delta.relation) else {
                // Replicated relation: every shard sees the same edits.
                for shard in &mut out {
                    shard.relations.push(delta.clone());
                }
                continue;
            };
            let mut parts: Vec<RelationDelta> = (0..self.shards)
                .map(|_| RelationDelta::new(delta.relation.clone()))
                .collect();
            // Deletes: replay the routing over the pre-delta relation,
            // counting per-shard local ids as we go.
            let deletes = delta.sorted_deletes();
            if let Some(&max) = deletes.last() {
                if max >= rel.len() {
                    return Err(DeltaError::DeleteOutOfRange {
                        relation: delta.relation.clone(),
                        tid: max,
                        len: rel.len(),
                    });
                }
            }
            let mut next_delete = deletes.iter().peekable();
            let mut local = vec![0 as TupleId; self.shards];
            for tid in 0..rel.len() {
                let shard = self.shard_of(cols.iter().map(|&c| rel.column(c)[tid]));
                if next_delete.peek() == Some(&&tid) {
                    next_delete.next();
                    parts[shard].deletes.push(local[shard]);
                }
                local[shard] += 1;
            }
            // Inserts: route by key hash, preserving batch order per shard.
            for tuple in &delta.inserts {
                if tuple.values().len() != rel.arity() {
                    return Err(DeltaError::ArityMismatch {
                        relation: delta.relation.clone(),
                        expected: rel.arity(),
                        got: tuple.values().len(),
                    });
                }
                let shard = self.shard_of(cols.iter().map(|&c| tuple.values()[c]));
                parts[shard].inserts.push(tuple.clone());
            }
            for (shard, part) in out.iter_mut().zip(parts) {
                shard.relations.push(part);
            }
        }
        Ok(out)
    }
}

impl Database {
    /// Split this database into [`ShardSpec::shards`] databases: partitioned
    /// relations are hash-split by their key columns, everything else is
    /// replicated by sharing the columnar data (see the [module
    /// docs](self)). The shards are unsealed, carry the source's generation,
    /// and share schemas (hence dictionaries) with the source.
    pub fn partition(&self, spec: &ShardSpec) -> Result<Vec<Database>, ShardError> {
        spec.validate(self)?;
        let mut shards: Vec<Database> = (0..spec.shards()).map(|_| Database::new()).collect();
        for rel in self.relations() {
            match spec.route_relation(rel) {
                Some(routes) => {
                    let mut parts: Vec<Relation> = (0..spec.shards())
                        .map(|_| Relation::with_schema(rel.name(), rel.schema().clone()))
                        .collect();
                    for (tid, &shard) in routes.iter().enumerate() {
                        let row = rel.tuple(tid);
                        let values: Vec<Value> = row.values().collect();
                        parts[shard].push_row(&values, row.weight());
                    }
                    for (shard, part) in shards.iter_mut().zip(parts) {
                        shard.add(part);
                    }
                }
                None => {
                    let shared = self
                        .get_shared(rel.name())
                        .expect("relation came from this database");
                    for shard in &mut shards {
                        shard.add_shared(std::sync::Arc::clone(&shared));
                    }
                }
            }
        }
        for shard in &mut shards {
            shard.set_generation(self.generation());
        }
        Ok(shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use crate::Schema;

    fn edge_db(n: u64) -> Database {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        let mut s = Relation::new("S", 2);
        for i in 0..n {
            r.push_edge(i, i % 7, i as f64);
            s.push_edge(i % 7, i, (i + n) as f64);
        }
        let mut w = Relation::new("W", 1);
        w.push(Tuple::new(vec![42], 1.0));
        db.add(r);
        db.add(s);
        db.add(w);
        db
    }

    #[test]
    fn partition_is_a_disjoint_cover_in_original_order() {
        let db = edge_db(50);
        let spec = ShardSpec::new(4)
            .partition_by("R", vec![1])
            .partition_by("S", vec![0]);
        let shards = db.partition(&spec).unwrap();
        assert_eq!(shards.len(), 4);
        // Every R tuple lands in exactly one shard, in original order.
        let mut seen: Vec<Vec<Value>> = Vec::new();
        for shard in &shards {
            for row in shard.expect("R").tuples() {
                seen.push(row.values_vec());
            }
        }
        assert_eq!(seen.len(), 50, "disjoint cover");
        // Co-partitioning: R.col1 and S.col0 bind the same join value, so
        // every tuple sits in the shard its key hashes to — a joinable pair
        // can never be split across shards.
        for (s, shard) in shards.iter().enumerate() {
            for &k in shard.expect("R").column(1) {
                assert_eq!(spec.shard_of([k]), s);
            }
            for &k in shard.expect("S").column(0) {
                assert_eq!(spec.shard_of([k]), s);
            }
        }
        // Replicated relation is Arc-shared, not copied.
        for shard in &shards {
            assert!(std::sync::Arc::ptr_eq(
                &db.get_shared("W").unwrap(),
                &shard.get_shared("W").unwrap()
            ));
        }
    }

    #[test]
    fn partition_propagates_generation_and_shares_dictionaries() {
        let mut db = Database::new();
        let mut r = Relation::with_schema("F", Schema::text_shared(2));
        r.push_text_edge("alice", "bob", 1.0);
        r.push_text_edge("carol", "bob", 2.0);
        db.add(r);
        db.set_generation(9);
        let spec = ShardSpec::new(2).partition_by("F", vec![0]);
        let shards = db.partition(&spec).unwrap();
        for shard in &shards {
            assert_eq!(shard.generation(), 9);
            assert!(std::sync::Arc::ptr_eq(
                db.expect("F").dictionary(0).unwrap(),
                shard.expect("F").dictionary(0).unwrap()
            ));
        }
        // Decoding works shard-locally through the shared dictionary.
        let total: usize = shards.iter().map(|s| s.expect("F").len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn routing_is_deterministic_and_validated() {
        let db = edge_db(10);
        let spec = ShardSpec::new(3).partition_by("R", vec![1]);
        let a = spec.route_relation(db.expect("R")).unwrap();
        let b = spec.route_relation(db.expect("R")).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s < 3));
        assert_eq!(spec.route_relation(db.expect("W")), None, "replicated");
        assert_eq!(spec.route_row("R", &[5, 3]), Some(spec.shard_of([3])));

        let unknown = ShardSpec::new(2).partition_by("Q", vec![0]);
        assert!(matches!(
            db.partition(&unknown),
            Err(ShardError::UnknownRelation(name)) if name == "Q"
        ));
        let oob = ShardSpec::new(2).partition_by("R", vec![5]);
        assert!(matches!(
            db.partition(&oob),
            Err(ShardError::ColumnOutOfRange {
                column: 5,
                arity: 2,
                ..
            })
        ));
    }

    #[test]
    fn tid_maps_translate_local_ids_back_to_global() {
        let db = edge_db(20);
        let spec = ShardSpec::new(3).partition_by("R", vec![1]);
        let maps = spec.tid_maps(db.expect("R")).unwrap();
        let shards = db.partition(&spec).unwrap();
        for (s, shard) in shards.iter().enumerate() {
            let part = shard.expect("R");
            assert_eq!(part.len(), maps[s].len());
            for (local, &global) in maps[s].iter().enumerate() {
                assert_eq!(
                    part.tuple(local).values_vec(),
                    db.expect("R").tuple(global).values_vec()
                );
                assert_eq!(
                    part.tuple(local).weight(),
                    db.expect("R").tuple(global).weight()
                );
            }
        }
    }

    #[test]
    fn split_batch_routes_edits_with_their_partition() {
        let db = edge_db(30);
        let spec = ShardSpec::new(4)
            .partition_by("R", vec![1])
            .partition_by("S", vec![0]);
        let batch = DeltaBatch::new()
            .delete("R", 3)
            .delete("R", 17)
            .insert("R", Tuple::new(vec![100, 5], 0.5))
            .insert("S", Tuple::new(vec![5, 100], 0.25))
            .insert("W", Tuple::new(vec![7], 0.0));
        let parts = spec.split_batch(&db, &batch).unwrap();
        assert_eq!(parts.len(), 4);

        // Ground truth: global apply then partition ≡ per-shard apply.
        let applied = db.apply_delta(&batch).unwrap();
        let expected = applied.partition(&spec).unwrap();
        let shards = db.partition(&spec).unwrap();
        for (s, shard) in shards.iter().enumerate() {
            let patched = shard.apply_delta(&parts[s]).unwrap();
            for name in ["R", "S", "W"] {
                let got = patched.expect(name);
                let want = expected[s].expect(name);
                assert_eq!(got.len(), want.len(), "shard {s} relation {name}");
                for id in 0..got.len() {
                    assert_eq!(got.tuple(id).values_vec(), want.tuple(id).values_vec());
                    assert_eq!(got.tuple(id).weight(), want.tuple(id).weight());
                }
            }
        }

        // Errors mirror the apply path's validation.
        let bad = DeltaBatch::new().delete("R", 999);
        assert!(matches!(
            spec.split_batch(&db, &bad),
            Err(DeltaError::DeleteOutOfRange { tid: 999, .. })
        ));
        let unknown = DeltaBatch::new().delete("Nope", 0);
        assert!(matches!(
            spec.split_batch(&db, &unknown),
            Err(DeltaError::UnknownRelation(_))
        ));
    }
}
