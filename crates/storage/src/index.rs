//! Hash indexes for constant-time equi-join lookups.
//!
//! The cost model of §2.3 assumes "a data structure that can be built in
//! linear time to support tuple lookups in constant time". [`HashIndex`]
//! groups the tuple ids of a relation by the values of a chosen key (one or
//! more columns).
//!
//! ## Layout and allocation-free probing
//!
//! The index is fully flat (CSR-style), in line with the cache-conscious
//! layout used by the T-DP core:
//!
//! * `table` — an open-addressing (linear-probing) table of group ids,
//!   power-of-two sized;
//! * `group_keys` — all distinct keys, flattened: group `g`'s key occupies
//!   `group_keys[g·k .. (g+1)·k]` where `k` is the key arity;
//! * `group_offsets` / `group_tids` — the tuple ids of each group,
//!   contiguous, in relation insertion order;
//! * `tuple_groups` — the group id of **every indexed tuple**, kept from the
//!   build pass. Consumers that walk the indexed relation itself (the
//!   engine's value-node loop) read their group with a single array access —
//!   no re-hashing of rows that the build already hashed.
//!
//! Construction reads the relation **column-wise**: the key columns are
//! borrowed once as contiguous slices and each per-tuple hash gathers from
//! them directly, so the build is a sequential scan per key column. Every
//! probe path hashes the key columns directly from borrowed data — a
//! caller-provided key slice ([`HashIndex::lookup`]), a row of another
//! relation addressed by tuple id ([`HashIndex::group_of_row_in`]), an
//! intermediate row slice ([`HashIndex::lookup_cols`]), or a single value for
//! single-column keys ([`HashIndex::lookup1`], the fast path used by the
//! engine's equi-join compilation). No probe allocates.

use crate::relation::Relation;
use crate::tuple::{TupleId, Value};

/// Marker for an empty open-addressing bucket.
const EMPTY: u32 = u32::MAX;

/// Multiplier of the FxHash/wyhash family; one multiply per key column gives
/// a well-mixed 64-bit hash for the integer join keys used here.
const HASH_K: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(h: u64, v: Value) -> u64 {
    (h ^ v).wrapping_mul(HASH_K).rotate_left(23)
}

#[inline]
fn finish(h: u64) -> u64 {
    let h = h ^ (h >> 31);
    h.wrapping_mul(HASH_K)
}

/// Hash a single-column key.
#[inline]
fn hash1(v: Value) -> u64 {
    finish(mix(!0, v))
}

/// Hash a multi-column key given by an iterator over its values.
#[inline]
fn hash_key(values: impl Iterator<Item = Value>) -> u64 {
    let mut h = !0u64;
    for v in values {
        h = mix(h, v);
    }
    finish(h)
}

/// A hash index over one or more columns of a relation.
#[derive(Debug, Clone)]
pub struct HashIndex {
    key_columns: Vec<usize>,
    /// Open-addressing table of group ids (`EMPTY` = free bucket).
    table: Vec<u32>,
    /// `table.len() - 1`; the table is power-of-two sized.
    mask: usize,
    /// Flattened distinct keys, `key_columns.len()` values per group.
    group_keys: Vec<Value>,
    /// CSR offsets into `group_tids`, one entry per group plus a sentinel.
    group_offsets: Vec<u32>,
    /// Tuple ids, grouped by key, in relation insertion order.
    group_tids: Vec<TupleId>,
    /// The group id of every indexed tuple, by tuple id (build-pass output).
    tuple_groups: Vec<u32>,
    /// Cached maximum group size.
    max_bucket: usize,
}

impl HashIndex {
    /// Build an index over `key_columns` of `relation` in a single pass of
    /// sequential column scans.
    ///
    /// # Panics
    /// Panics if any key column is out of range for the relation's arity.
    pub fn build(relation: &Relation, key_columns: &[usize]) -> Self {
        // Chaos-testing hook; a no-op unless a fault plan is armed.
        anyk_core::faults::checkpoint("storage.index_build");
        let _span = anyk_obs::phase::span(anyk_obs::Phase::IndexBuild);
        for &c in key_columns {
            assert!(
                c < relation.arity(),
                "key column {c} out of range for relation {} (arity {})",
                relation.name(),
                relation.arity()
            );
        }
        let k = key_columns.len();
        let n = relation.len();
        // Group ids and CSR offsets are u32; groups ≤ tuples, so bounding the
        // tuple count keeps every narrowing cast below exact.
        assert!(
            n < u32::MAX as usize,
            "relation {} exceeds u32 index space ({n} tuples)",
            relation.name()
        );
        let capacity = (n * 2).next_power_of_two().max(4);
        let mut index = HashIndex {
            key_columns: key_columns.to_vec(),
            table: vec![EMPTY; capacity],
            mask: capacity - 1,
            group_keys: Vec::new(),
            group_offsets: Vec::new(),
            group_tids: Vec::with_capacity(n),
            tuple_groups: Vec::with_capacity(n),
            max_bucket: 0,
        };

        // Pass 1: assign a group id to every tuple, discovering distinct
        // keys; count group sizes. The columnar layout lets the key be
        // hashed straight out of the borrowed column slices.
        let mut group_sizes: Vec<u32> = Vec::new();
        if k == 1 {
            // Single-column fast path: one contiguous scan.
            let col = relation.column(key_columns[0]);
            for &v in col {
                let mut bucket = hash1(v) as usize & index.mask;
                let g = loop {
                    match index.table[bucket] {
                        EMPTY => {
                            let g = group_sizes.len() as u32;
                            index.table[bucket] = g;
                            index.group_keys.push(v);
                            group_sizes.push(0);
                            break g;
                        }
                        g => {
                            if index.group_keys[g as usize] == v {
                                break g;
                            }
                            bucket = (bucket + 1) & index.mask;
                        }
                    }
                };
                group_sizes[g as usize] += 1;
                index.tuple_groups.push(g);
            }
        } else {
            let cols: Vec<&[Value]> = key_columns.iter().map(|&c| relation.column(c)).collect();
            for tid in 0..n {
                let hash = hash_key(cols.iter().map(|col| col[tid]));
                let mut bucket = hash as usize & index.mask;
                let g = loop {
                    match index.table[bucket] {
                        EMPTY => {
                            let g = group_sizes.len() as u32;
                            index.table[bucket] = g;
                            index.group_keys.extend(cols.iter().map(|col| col[tid]));
                            group_sizes.push(0);
                            break g;
                        }
                        g => {
                            let key = &index.group_keys[g as usize * k..(g as usize + 1) * k];
                            if cols.iter().zip(key).all(|(col, &kv)| col[tid] == kv) {
                                break g;
                            }
                            bucket = (bucket + 1) & index.mask;
                        }
                    }
                };
                group_sizes[g as usize] += 1;
                index.tuple_groups.push(g);
            }
        }

        // Pass 2: prefix-sum the sizes and scatter tuple ids; scattering in
        // tuple order keeps each group in relation insertion order.
        let num_groups = group_sizes.len();
        index.group_offsets = Vec::with_capacity(num_groups + 1);
        let mut acc = 0u32;
        for &size in &group_sizes {
            index.group_offsets.push(acc);
            acc += size;
            index.max_bucket = index.max_bucket.max(size as usize);
        }
        index.group_offsets.push(acc);
        index.group_tids.resize(acc as usize, 0);
        let mut cursor: Vec<u32> = index.group_offsets[..num_groups].to_vec();
        for (tid, &g) in index.tuple_groups.iter().enumerate() {
            index.group_tids[cursor[g as usize] as usize] = tid;
            cursor[g as usize] += 1;
        }
        index
    }

    /// The columns this index is keyed on.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// Number of distinct keys (groups).
    pub fn num_groups(&self) -> usize {
        self.group_offsets.len().saturating_sub(1)
    }

    /// The group id of tuple `tid` of the **indexed relation itself** — a
    /// single array read, no hashing. This is the fast path for consumers
    /// that walk the indexed relation in tuple order (the engine's value-node
    /// loop).
    ///
    /// # Panics
    /// Panics if `tid` is out of range.
    #[inline]
    pub fn group_of_tuple(&self, tid: TupleId) -> usize {
        self.tuple_groups[tid] as usize
    }

    /// Probe the table with a precomputed hash; `matches` checks a candidate
    /// group id against the probed key.
    #[inline]
    fn probe(&self, hash: u64, matches: impl Fn(usize) -> bool) -> Option<usize> {
        let mut bucket = hash as usize & self.mask;
        loop {
            match self.table[bucket] {
                EMPTY => return None,
                g => {
                    if matches(g as usize) {
                        return Some(g as usize);
                    }
                    bucket = (bucket + 1) & self.mask;
                }
            }
        }
    }

    /// The group whose key equals `key`, if any. Allocation-free.
    pub fn group_of(&self, key: &[Value]) -> Option<usize> {
        debug_assert_eq!(key.len(), self.key_columns.len());
        let k = key.len();
        self.probe(hash_key(key.iter().copied()), |g| {
            &self.group_keys[g * k..(g + 1) * k] == key
        })
    }

    /// The group matching the key columns `cols` of the full row `row`
    /// (allocation-free: the key is never materialised). `cols` must have the
    /// index's key arity but may name different columns — this is the
    /// equi-join probe, where the child side's key positions differ from the
    /// indexed parent side's.
    pub fn group_of_cols(&self, row: &[Value], cols: &[usize]) -> Option<usize> {
        debug_assert_eq!(cols.len(), self.key_columns.len());
        let k = cols.len();
        self.probe(hash_key(cols.iter().map(|&c| row[c])), |g| {
            self.group_keys[g * k..(g + 1) * k]
                .iter()
                .zip(cols)
                .all(|(&kv, &c)| kv == row[c])
        })
    }

    /// The group matching columns `cols` of row `tid` of `relation` — the
    /// columnar analogue of [`HashIndex::group_of_cols`], gathering the key
    /// from `relation`'s column slices without materialising the row.
    pub fn group_of_row_in(
        &self,
        relation: &Relation,
        tid: TupleId,
        cols: &[usize],
    ) -> Option<usize> {
        debug_assert_eq!(cols.len(), self.key_columns.len());
        let k = cols.len();
        self.probe(
            hash_key(cols.iter().map(|&c| relation.column(c)[tid])),
            |g| {
                self.group_keys[g * k..(g + 1) * k]
                    .iter()
                    .zip(cols)
                    .all(|(&kv, &c)| kv == relation.column(c)[tid])
            },
        )
    }

    /// The group matching the index's own key columns of the full row `row`.
    pub fn group_of_row(&self, row: &[Value]) -> Option<usize> {
        self.group_of_cols(row, &self.key_columns)
    }

    /// Single-column fast path: the group whose one-column key equals `v`.
    ///
    /// # Panics
    /// Debug-asserts that the index is keyed on exactly one column.
    #[inline]
    pub fn group_of1(&self, v: Value) -> Option<usize> {
        debug_assert_eq!(self.key_columns.len(), 1);
        self.probe(hash1(v), |g| self.group_keys[g] == v)
    }

    /// The key and tuple ids of group `g`.
    pub fn group(&self, g: usize) -> (&[Value], &[TupleId]) {
        let k = self.key_columns.len();
        (
            &self.group_keys[g * k..(g + 1) * k],
            &self.group_tids[self.group_offsets[g] as usize..self.group_offsets[g + 1] as usize],
        )
    }

    /// The tuple ids of group `g`.
    #[inline]
    pub fn group_tuples(&self, g: usize) -> &[TupleId] {
        &self.group_tids[self.group_offsets[g] as usize..self.group_offsets[g + 1] as usize]
    }

    /// Tuple ids whose key equals `key` (empty slice if none).
    pub fn lookup(&self, key: &[Value]) -> &[TupleId] {
        match self.group_of(key) {
            Some(g) => self.group_tuples(g),
            None => &[],
        }
    }

    /// Tuple ids matching the key columns `cols` of the full row `row`.
    pub fn lookup_cols(&self, row: &[Value], cols: &[usize]) -> &[TupleId] {
        match self.group_of_cols(row, cols) {
            Some(g) => self.group_tuples(g),
            None => &[],
        }
    }

    /// Tuple ids whose key (the index's own key columns) matches `row`.
    pub fn lookup_row(&self, row: &[Value]) -> &[TupleId] {
        match self.group_of_row(row) {
            Some(g) => self.group_tuples(g),
            None => &[],
        }
    }

    /// Single-column fast path of [`HashIndex::lookup`].
    #[inline]
    pub fn lookup1(&self, v: Value) -> &[TupleId] {
        match self.group_of1(v) {
            Some(g) => self.group_tuples(g),
            None => &[],
        }
    }

    /// Whether any tuple has the given key.
    pub fn contains(&self, key: &[Value]) -> bool {
        self.group_of(key).is_some()
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.num_groups()
    }

    /// Iterate over `(key, tuple ids)` groups.
    pub fn groups(&self) -> impl Iterator<Item = (&[Value], &[TupleId])> {
        (0..self.num_groups()).map(|g| self.group(g))
    }

    /// The largest bucket size — the maximum "degree" of a key value, used by
    /// the heavy/light threshold analysis of §5.3.1.
    pub fn max_bucket(&self) -> usize {
        self.max_bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn sample() -> Relation {
        let mut r = Relation::new("E", 2);
        r.push(Tuple::new(vec![1, 10], 0.0));
        r.push(Tuple::new(vec![1, 20], 0.0));
        r.push(Tuple::new(vec![2, 10], 0.0));
        r
    }

    #[test]
    fn single_column_lookup() {
        let r = sample();
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.lookup(&[1]), &[0, 1]);
        assert_eq!(idx.lookup(&[2]), &[2]);
        assert!(idx.lookup(&[3]).is_empty());
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.max_bucket(), 2);
        // The single-column fast path agrees.
        assert_eq!(idx.lookup1(1), &[0, 1]);
        assert_eq!(idx.lookup1(2), &[2]);
        assert!(idx.lookup1(7).is_empty());
    }

    #[test]
    fn multi_column_lookup() {
        let r = sample();
        let idx = HashIndex::build(&r, &[0, 1]);
        assert_eq!(idx.lookup(&[1, 20]), &[1]);
        assert!(idx.contains(&[2, 10]));
        assert!(!idx.contains(&[2, 20]));
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn row_and_column_probes_agree_with_key_probes() {
        let r = sample();
        let idx = HashIndex::build(&r, &[1]);
        // lookup_row extracts the index's key columns from a full row.
        assert_eq!(idx.lookup_row(&[9, 10]), idx.lookup(&[10]));
        // lookup_cols probes via caller-chosen columns of the row.
        assert_eq!(idx.lookup_cols(&[20, 99], &[0]), idx.lookup(&[20]));
        assert!(idx.lookup_cols(&[99, 0], &[0]).is_empty());
    }

    #[test]
    fn tuple_groups_match_probes() {
        let r = sample();
        for key in [&[0usize][..], &[1], &[0, 1]] {
            let idx = HashIndex::build(&r, key);
            for (tid, t) in r.iter() {
                let key_vals: Vec<Value> = key.iter().map(|&c| t.value(c)).collect();
                assert_eq!(
                    idx.group_of_tuple(tid),
                    idx.group_of(&key_vals).expect("indexed tuple has a group"),
                    "key {key:?} tuple {tid}"
                );
                assert_eq!(
                    idx.group_of_row_in(&r, tid, key),
                    Some(idx.group_of_tuple(tid))
                );
            }
        }
    }

    #[test]
    fn groups_cover_every_tuple_in_insertion_order() {
        let r = sample();
        let idx = HashIndex::build(&r, &[0]);
        let mut seen: Vec<TupleId> = Vec::new();
        for (key, tids) in idx.groups() {
            assert_eq!(key.len(), 1);
            assert!(tids.windows(2).all(|w| w[0] < w[1]), "insertion order");
            seen.extend_from_slice(tids);
        }
        seen.sort();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn empty_key_groups_everything_together() {
        let r = sample();
        let idx = HashIndex::build(&r, &[]);
        assert_eq!(idx.num_groups(), 1);
        assert_eq!(idx.lookup(&[]), &[0, 1, 2]);
    }

    #[test]
    fn empty_relation_has_no_groups() {
        let r = Relation::new("E", 2);
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.num_groups(), 0);
        assert!(idx.lookup(&[1]).is_empty());
    }

    #[test]
    fn collisions_are_resolved_by_key_comparison() {
        // Enough keys to force open-addressing collisions in a small table.
        let mut r = Relation::new("big", 1);
        for v in 0..1000u64 {
            r.push(Tuple::new(vec![v * 7919], 0.0));
        }
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.distinct_keys(), 1000);
        for v in 0..1000u64 {
            assert_eq!(idx.lookup1(v * 7919), &[v as usize]);
            assert!(idx.lookup1(v * 7919 + 1).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        HashIndex::build(&sample(), &[5]);
    }
}
