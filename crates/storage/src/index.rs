//! Hash indexes for constant-time equi-join lookups.
//!
//! The cost model of §2.3 assumes "a data structure that can be built in
//! linear time to support tuple lookups in constant time" — in practice a
//! hash table. [`HashIndex`] groups the tuple ids of a relation by the values
//! of a chosen key (one or more columns).

use crate::relation::Relation;
use crate::tuple::{TupleId, Value};
use std::collections::HashMap;

/// A hash index over one or more columns of a relation.
#[derive(Debug, Clone)]
pub struct HashIndex {
    key_columns: Vec<usize>,
    buckets: HashMap<Vec<Value>, Vec<TupleId>>,
}

impl HashIndex {
    /// Build an index over `key_columns` of `relation` in a single pass.
    ///
    /// # Panics
    /// Panics if any key column is out of range for the relation's arity.
    pub fn build(relation: &Relation, key_columns: &[usize]) -> Self {
        for &c in key_columns {
            assert!(
                c < relation.arity(),
                "key column {c} out of range for relation {} (arity {})",
                relation.name(),
                relation.arity()
            );
        }
        let mut buckets: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::new();
        for (id, tuple) in relation.iter() {
            let key: Vec<Value> = key_columns.iter().map(|&c| tuple.value(c)).collect();
            buckets.entry(key).or_default().push(id);
        }
        HashIndex {
            key_columns: key_columns.to_vec(),
            buckets,
        }
    }

    /// The columns this index is keyed on.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// Tuple ids whose key equals `key` (empty slice if none).
    pub fn lookup(&self, key: &[Value]) -> &[TupleId] {
        self.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether any tuple has the given key.
    pub fn contains(&self, key: &[Value]) -> bool {
        self.buckets.contains_key(key)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }

    /// Iterate over `(key, tuple ids)` groups.
    pub fn groups(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<TupleId>)> {
        self.buckets.iter()
    }

    /// The largest bucket size — the maximum "degree" of a key value, used by
    /// the heavy/light threshold analysis of §5.3.1.
    pub fn max_bucket(&self) -> usize {
        self.buckets.values().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn sample() -> Relation {
        let mut r = Relation::new("E", 2);
        r.push(Tuple::new(vec![1, 10], 0.0));
        r.push(Tuple::new(vec![1, 20], 0.0));
        r.push(Tuple::new(vec![2, 10], 0.0));
        r
    }

    #[test]
    fn single_column_lookup() {
        let r = sample();
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.lookup(&[1]), &[0, 1]);
        assert_eq!(idx.lookup(&[2]), &[2]);
        assert!(idx.lookup(&[3]).is_empty());
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.max_bucket(), 2);
    }

    #[test]
    fn multi_column_lookup() {
        let r = sample();
        let idx = HashIndex::build(&r, &[0, 1]);
        assert_eq!(idx.lookup(&[1, 20]), &[1]);
        assert!(idx.contains(&[2, 10]));
        assert!(!idx.contains(&[2, 20]));
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_panics() {
        HashIndex::build(&sample(), &[5]);
    }
}
