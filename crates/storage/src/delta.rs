//! Tuple-level deltas: batched inserts/deletes applied copy-on-write.
//!
//! A [`DeltaBatch`] describes a set of per-relation edits — tuple inserts
//! and tuple deletes (addressed by [`TupleId`]) — that
//! [`Database::apply_delta`](crate::Database::apply_delta) turns into a
//! **new** database snapshot: untouched relations are `Arc`-shared with the
//! source, touched relations are rebuilt once (survivors in their original
//! order, inserts appended), and the snapshot's generation is bumped so
//! generation-keyed caches can tell the two apart. The source database is
//! never mutated — live readers of the old snapshot keep streaming from it.
//!
//! ## Tuple-id remapping
//!
//! Deleting tuples compacts the survivors: a surviving tuple's new id is its
//! old id minus the number of deleted ids below it ([`TidRemap`] computes
//! the mapping). Engines that cache tuple ids (e.g. as T-DP payloads) must
//! remap them when they carry a plan across a delta; from-scratch consumers
//! simply see a densely-numbered relation, exactly as if it had been loaded
//! that way.

use crate::tuple::{Tuple, TupleId};

/// Edits to one relation: tuples to delete (by id, in the *pre-delta* id
/// space) and tuples to append.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RelationDelta {
    /// The relation's name (must exist in the target database).
    pub relation: String,
    /// Tuple ids to remove, in the source relation's id space. Order is
    /// irrelevant; duplicates are ignored.
    pub deletes: Vec<TupleId>,
    /// Tuples to append after the deletes (ids assigned past the survivors).
    pub inserts: Vec<Tuple>,
}

impl RelationDelta {
    /// An empty delta for `relation`.
    pub fn new(relation: impl Into<String>) -> Self {
        RelationDelta {
            relation: relation.into(),
            deletes: Vec::new(),
            inserts: Vec::new(),
        }
    }

    /// The deletes sorted ascending with duplicates dropped — the canonical
    /// form the apply path works in.
    pub fn sorted_deletes(&self) -> Vec<TupleId> {
        let mut d = self.deletes.clone();
        d.sort_unstable();
        d.dedup();
        d
    }

    /// True if the delta edits nothing.
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.inserts.is_empty()
    }
}

/// A batch of per-relation edits applied atomically as one new snapshot
/// generation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaBatch {
    /// The per-relation edits. At most one entry per relation name is
    /// expected; later entries for the same name would see the ids already
    /// shifted by earlier ones, so builders should merge instead.
    pub relations: Vec<RelationDelta>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// The (possibly fresh) entry for `relation`.
    fn entry(&mut self, relation: &str) -> &mut RelationDelta {
        if let Some(pos) = self.relations.iter().position(|d| d.relation == relation) {
            return &mut self.relations[pos];
        }
        self.relations.push(RelationDelta::new(relation));
        self.relations.last_mut().expect("just pushed")
    }

    /// Queue an insert of `tuple` into `relation` (builder-style).
    pub fn insert(mut self, relation: &str, tuple: Tuple) -> Self {
        self.entry(relation).inserts.push(tuple);
        self
    }

    /// Queue a delete of tuple `tid` (pre-delta id space) from `relation`.
    pub fn delete(mut self, relation: &str, tid: TupleId) -> Self {
        self.entry(relation).deletes.push(tid);
        self
    }

    /// True if the batch edits nothing.
    pub fn is_empty(&self) -> bool {
        self.relations.iter().all(RelationDelta::is_empty)
    }

    /// Whether the batch touches relation `name`.
    pub fn touches(&self, name: &str) -> bool {
        self.relations
            .iter()
            .any(|d| d.relation == name && !d.is_empty())
    }

    /// The delta for relation `name`, if the batch carries one.
    pub fn for_relation(&self, name: &str) -> Option<&RelationDelta> {
        self.relations.iter().find(|d| d.relation == name)
    }

    /// Total number of queued edits (inserts + deletes) across all relations.
    pub fn edit_count(&self) -> usize {
        self.relations
            .iter()
            .map(|d| d.deletes.len() + d.inserts.len())
            .sum()
    }
}

/// Why a [`DeltaBatch`] could not be applied. Validation runs before any
/// work, so a failed apply leaves no partial snapshot behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The batch names a relation the database does not have.
    UnknownRelation(String),
    /// An inserted tuple's arity does not match its relation.
    ArityMismatch {
        /// The relation whose delta carried the bad tuple.
        relation: String,
        /// The relation's arity.
        expected: usize,
        /// The inserted tuple's arity.
        got: usize,
    },
    /// A delete id is past the end of its relation.
    DeleteOutOfRange {
        /// The relation whose delta carried the bad id.
        relation: String,
        /// The out-of-range tuple id.
        tid: TupleId,
        /// The relation's length.
        len: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownRelation(name) => {
                write!(f, "delta names unknown relation `{name}`")
            }
            DeltaError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "delta insert into `{relation}` has arity {got}, relation has {expected}"
            ),
            DeltaError::DeleteOutOfRange { relation, tid, len } => write!(
                f,
                "delta deletes tuple {tid} of `{relation}`, which has only {len} tuples"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The old-id → new-id mapping induced by a sorted, deduped delete list:
/// survivors shift down by the number of deleted ids below them.
#[derive(Debug, Clone)]
pub struct TidRemap {
    /// Sorted, deduped deleted ids.
    deleted: Vec<TupleId>,
}

impl TidRemap {
    /// Build the remap for `sorted_deletes` (as produced by
    /// [`RelationDelta::sorted_deletes`]).
    pub fn new(sorted_deletes: Vec<TupleId>) -> Self {
        debug_assert!(sorted_deletes.windows(2).all(|w| w[0] < w[1]));
        TidRemap {
            deleted: sorted_deletes,
        }
    }

    /// The new id of pre-delta tuple `old`, or `None` if it was deleted.
    pub fn map(&self, old: TupleId) -> Option<TupleId> {
        match self.deleted.binary_search(&old) {
            Ok(_) => None,
            Err(below) => Some(old - below),
        }
    }

    /// Number of deleted ids.
    pub fn deleted_count(&self) -> usize {
        self.deleted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_merges_per_relation() {
        let batch = DeltaBatch::new()
            .insert("R", Tuple::new(vec![1, 2], 0.5))
            .delete("R", 3)
            .insert("S", Tuple::new(vec![9], 1.0))
            .delete("R", 3)
            .delete("R", 1);
        assert_eq!(batch.relations.len(), 2);
        assert!(batch.touches("R"));
        assert!(batch.touches("S"));
        assert!(!batch.touches("T"));
        assert_eq!(batch.edit_count(), 5);
        let r = batch.for_relation("R").unwrap();
        assert_eq!(r.sorted_deletes(), vec![1, 3], "sorted and deduped");
        assert_eq!(r.inserts.len(), 1);
    }

    #[test]
    fn remap_shifts_past_deletes() {
        let remap = TidRemap::new(vec![1, 4, 5]);
        assert_eq!(remap.map(0), Some(0));
        assert_eq!(remap.map(1), None);
        assert_eq!(remap.map(2), Some(1));
        assert_eq!(remap.map(3), Some(2));
        assert_eq!(remap.map(4), None);
        assert_eq!(remap.map(5), None);
        assert_eq!(remap.map(6), Some(3));
        assert_eq!(remap.deleted_count(), 3);
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(DeltaBatch::new().is_empty());
        let batch = DeltaBatch::new().delete("R", 0);
        assert!(!batch.is_empty());
    }
}
