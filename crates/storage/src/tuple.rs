//! Tuples: weighted rows of attribute values.

/// An attribute value. The paper's experiments join on integer-encoded node
/// identifiers; string-keyed data is dictionary-encoded to dense `u64` ids at
/// the storage boundary (see [`crate::dictionary`]), so every layer above the
/// columns — indexes, compilation, the any-k core — operates on this type
/// alone.
pub type Value = u64;

/// Index of a tuple within its relation.
pub type TupleId = usize;

/// A weighted tuple: a fixed-arity vector of attribute values plus the weight
/// `w(r)` used by the ranking function (Definition 4).
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    values: Vec<Value>,
    weight: f64,
}

impl Tuple {
    /// Create a tuple from its attribute values and weight.
    pub fn new(values: Vec<Value>, weight: f64) -> Self {
        Tuple { values, weight }
    }

    /// Create an unweighted tuple (weight `0.0`, the `⊗`-identity of the
    /// tropical dioid), e.g. for Boolean evaluation.
    pub fn unweighted(values: Vec<Value>) -> Self {
        Tuple::new(values, 0.0)
    }

    /// The number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All attribute values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value of attribute `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= arity()`.
    pub fn value(&self, idx: usize) -> Value {
        self.values[idx]
    }

    /// The tuple's weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Replace the tuple's weight (used when deriving bag tuples whose weight
    /// must aggregate several input weights, §5.3).
    pub fn set_weight(&mut self, weight: f64) {
        self.weight = weight;
    }

    /// Project the tuple onto the given attribute positions (weight is kept).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(
            positions.iter().map(|&p| self.values[p]).collect(),
            self.weight,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let t = Tuple::new(vec![3, 7, 9], 2.5);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.value(1), 7);
        assert_eq!(t.values(), &[3, 7, 9]);
        assert_eq!(t.weight(), 2.5);
    }

    #[test]
    fn unweighted_has_zero_weight() {
        assert_eq!(Tuple::unweighted(vec![1]).weight(), 0.0);
    }

    #[test]
    fn projection_selects_and_keeps_weight() {
        let t = Tuple::new(vec![3, 7, 9], 1.5);
        let p = t.project(&[2, 0]);
        assert_eq!(p.values(), &[9, 3]);
        assert_eq!(p.weight(), 1.5);
    }
}
