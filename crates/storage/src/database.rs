//! Databases: catalogs of named relations.

use crate::relation::Relation;
use std::collections::HashMap;

/// An in-memory database: an ordered catalog of relations addressed by name.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: Vec<Relation>,
    by_name: HashMap<String, usize>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Add a relation. If a relation with the same name exists it is
    /// replaced (and its slot reused), mirroring `CREATE OR REPLACE TABLE`.
    pub fn add(&mut self, relation: Relation) {
        match self.by_name.get(relation.name()) {
            Some(&idx) => self.relations[idx] = relation,
            None => {
                self.by_name
                    .insert(relation.name().to_string(), self.relations.len());
                self.relations.push(relation);
            }
        }
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.by_name.get(name).map(|&i| &self.relations[i])
    }

    /// Look up a relation by name, panicking with a clear message if absent.
    pub fn expect(&self, name: &str) -> &Relation {
        self.get(name)
            .unwrap_or_else(|| panic!("relation `{name}` not found in database"))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the database has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate over all relations in insertion order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.iter()
    }

    /// The maximum relation cardinality `n` (the paper's input-size
    /// parameter), or 0 for an empty database.
    pub fn max_cardinality(&self) -> usize {
        self.relations.iter().map(Relation::len).max().unwrap_or(0)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    #[test]
    fn add_get_and_replace() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 1);
        r.push(Tuple::unweighted(vec![1]));
        db.add(r);
        assert_eq!(db.len(), 1);
        assert_eq!(db.expect("R").len(), 1);

        let mut r2 = Relation::new("R", 1);
        r2.push(Tuple::unweighted(vec![1]));
        r2.push(Tuple::unweighted(vec![2]));
        db.add(r2);
        assert_eq!(db.len(), 1, "replacement keeps a single slot");
        assert_eq!(db.expect("R").len(), 2);
        assert!(db.get("S").is_none());
    }

    #[test]
    fn cardinality_statistics() {
        let mut db = Database::new();
        for (name, n) in [("A", 3), ("B", 7)] {
            let mut r = Relation::new(name, 1);
            for i in 0..n {
                r.push(Tuple::unweighted(vec![i]));
            }
            db.add(r);
        }
        assert_eq!(db.max_cardinality(), 7);
        assert_eq!(db.total_tuples(), 10);
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn expect_missing_panics() {
        Database::new().expect("nope");
    }
}
