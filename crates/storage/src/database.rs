//! Databases: catalogs of named relations, with a shared index cache.
//!
//! ## Index cache
//!
//! Several engine passes build the same [`HashIndex`] independently: the
//! equi-join compilation indexes each parent relation by its join key, the
//! naive-SQL baseline indexes every atom's relation by its bound columns, and
//! the cycle decomposition indexes the same oriented partition once per heavy
//! tree. [`Database::index`] memoises indexes per **(relation slot, key
//! columns)** in a sharded, `RwLock`-guarded, LRU-bounded cache (see
//! [`crate::index_cache`]), handing out cheap [`Arc`] clones; repeated
//! requests for the same key pay one hash-map probe under a read lock
//! instead of an `O(n)` rebuild, and concurrent readers — e.g. many query
//! sessions preprocessing over one shared snapshot — never block each other.
//!
//! The cache is bounded: a long-lived service over ad-hoc queries evicts its
//! least-recently-used indexes instead of growing without limit
//! ([`Database::set_index_cache_capacity`], `ANYK_INDEX_CACHE_CAP`), with
//! hit/miss/eviction counters exposed via [`Database::index_cache_stats`].
//!
//! The cache is invalidated when [`Database::add`] **replaces** a relation:
//! every cached index of the replaced slot is dropped, so a stale index is
//! never served (indexes are immutable snapshots of the relation they were
//! built from). Cloning a database clones the cache too — the `Arc`ed indexes
//! themselves are shared, which is sound because they are immutable and the
//! cloned relations are bit-identical.

use crate::index::HashIndex;
use crate::index_cache::{default_index_cache_capacity, IndexCache, IndexCacheStats};
use crate::relation::Relation;
use std::collections::HashMap;
use std::sync::Arc;

/// An in-memory database: an ordered catalog of relations addressed by name.
///
/// Relations are stored behind `Arc`s: cloning a database, or registering
/// one database's relation in another (see [`Database::add_shared`], used by
/// the engine's selection pushdown for the atoms a predicate does *not*
/// touch), shares the columnar data instead of copying it. The sharing is
/// sound because stored relations are immutable — mutation happens on an
/// owned [`Relation`] before [`Database::add`] hands it over.
#[derive(Debug, Clone)]
pub struct Database {
    relations: Vec<Arc<Relation>>,
    by_name: HashMap<String, usize>,
    /// Memoised hash indexes per (relation slot, key columns).
    index_cache: IndexCache,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            relations: Vec::new(),
            by_name: HashMap::new(),
            index_cache: IndexCache::new(default_index_cache_capacity()),
        }
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Add a relation. If a relation with the same name exists it is
    /// replaced (and its slot reused), mirroring `CREATE OR REPLACE TABLE`.
    /// Replacing drops every cached index of the old relation.
    pub fn add(&mut self, relation: Relation) {
        self.add_shared(Arc::new(relation));
    }

    /// Add an already-shared relation without copying its data — e.g. to
    /// register another database's relation in a scratch database (the
    /// selection-pushdown pass shares every unfiltered relation this way).
    /// Same replace semantics as [`Database::add`].
    pub fn add_shared(&mut self, relation: Arc<Relation>) {
        match self.by_name.get(relation.name()) {
            Some(&idx) => {
                self.relations[idx] = relation;
                self.index_cache.invalidate_slot(idx);
            }
            None => {
                self.by_name
                    .insert(relation.name().to_string(), self.relations.len());
                self.relations.push(relation);
            }
        }
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.by_name.get(name).map(|&i| self.relations[i].as_ref())
    }

    /// Look up a relation by name as a shareable handle (see
    /// [`Database::add_shared`]).
    pub fn get_shared(&self, name: &str) -> Option<Arc<Relation>> {
        self.by_name
            .get(name)
            .map(|&i| Arc::clone(&self.relations[i]))
    }

    /// Look up a relation by name, panicking with a clear message if absent.
    pub fn expect(&self, name: &str) -> &Relation {
        self.get(name)
            .unwrap_or_else(|| panic!("relation `{name}` not found in database"))
    }

    /// The hash index of `name` over `key_columns`, built on first request
    /// and memoised for subsequent ones. The returned [`Arc`] stays valid
    /// even if the relation is later replaced or the cache entry is evicted
    /// (it describes the snapshot it was built from); the *cache* entry,
    /// however, is dropped on replace, so a fresh request after a replace
    /// always sees the new data. Requests from many threads over a shared
    /// database proceed concurrently (hits take only a shard read lock).
    ///
    /// # Panics
    /// Panics if the relation does not exist or a key column is out of range.
    pub fn index(&self, name: &str, key_columns: &[usize]) -> Arc<HashIndex> {
        let slot = *self
            .by_name
            .get(name)
            .unwrap_or_else(|| panic!("relation `{name}` not found in database"));
        self.index_cache
            .get_or_build((slot, key_columns.to_vec()), || {
                HashIndex::build(&self.relations[slot], key_columns)
            })
    }

    /// Number of indexes currently memoised (diagnostics / tests).
    pub fn cached_indexes(&self) -> usize {
        self.index_cache.len()
    }

    /// Hit/miss/eviction counters and occupancy of the index cache.
    pub fn index_cache_stats(&self) -> IndexCacheStats {
        self.index_cache.stats()
    }

    /// The hard bound on the number of cached indexes.
    pub fn index_cache_capacity(&self) -> usize {
        self.index_cache.capacity()
    }

    /// Re-bound the index cache to `capacity` entries (clamped to ≥ 1),
    /// keeping the most recently used entries. Typically called once while
    /// the database is still exclusively owned, before sharing it behind an
    /// `Arc` with a query service.
    pub fn set_index_cache_capacity(&mut self, capacity: usize) {
        self.index_cache.set_capacity(capacity);
    }

    /// The dictionary of column `col` of relation `name`, if that column is
    /// dictionary-encoded. Replacing the relation via [`Database::add`]
    /// swaps in the replacement's schema, so a handle obtained *before* the
    /// replace keeps describing the old snapshot while new requests see the
    /// new dictionary.
    ///
    /// # Panics
    /// Panics if the relation does not exist or `col` is out of range.
    pub fn dictionary(&self, name: &str, col: usize) -> Option<Arc<crate::Dictionary>> {
        self.expect(name).dictionary(col).cloned()
    }

    /// Decode `value` through the dictionary of column `col` of relation
    /// `name`: the original string for a known id of a text column, `None`
    /// for raw-id columns or unknown ids.
    ///
    /// # Panics
    /// Panics if the relation does not exist or `col` is out of range.
    pub fn decode(&self, name: &str, col: usize, value: crate::Value) -> Option<String> {
        self.expect(name)
            .dictionary(col)
            .and_then(|d| d.decode(value))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the database has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate over all relations in insertion order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.iter().map(|r| r.as_ref())
    }

    /// The maximum relation cardinality `n` (the paper's input-size
    /// parameter), or 0 for an empty database.
    pub fn max_cardinality(&self) -> usize {
        self.relations().map(Relation::len).max().unwrap_or(0)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    #[test]
    fn add_get_and_replace() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 1);
        r.push(Tuple::unweighted(vec![1]));
        db.add(r);
        assert_eq!(db.len(), 1);
        assert_eq!(db.expect("R").len(), 1);

        let mut r2 = Relation::new("R", 1);
        r2.push(Tuple::unweighted(vec![1]));
        r2.push(Tuple::unweighted(vec![2]));
        db.add(r2);
        assert_eq!(db.len(), 1, "replacement keeps a single slot");
        assert_eq!(db.expect("R").len(), 2);
        assert!(db.get("S").is_none());
    }

    #[test]
    fn cardinality_statistics() {
        let mut db = Database::new();
        for (name, n) in [("A", 3), ("B", 7)] {
            let mut r = Relation::new(name, 1);
            for i in 0..n {
                r.push(Tuple::unweighted(vec![i]));
            }
            db.add(r);
        }
        assert_eq!(db.max_cardinality(), 7);
        assert_eq!(db.total_tuples(), 10);
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn expect_missing_panics() {
        Database::new().expect("nope");
    }

    #[test]
    fn index_is_cached_and_shared() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 10, 0.0);
        r.push_edge(1, 20, 0.0);
        db.add(r);
        let a = db.index("R", &[0]);
        let b = db.index("R", &[0]);
        assert!(Arc::ptr_eq(&a, &b), "second request hits the cache");
        assert_eq!(db.cached_indexes(), 1);
        let c = db.index("R", &[1]);
        assert!(
            !Arc::ptr_eq(&a, &c),
            "different key columns, different index"
        );
        assert_eq!(db.cached_indexes(), 2);
    }

    #[test]
    fn replacing_a_relation_invalidates_its_cached_indexes() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 10, 0.0);
        db.add(r);
        let mut s = Relation::new("S", 2);
        s.push_edge(7, 70, 0.0);
        db.add(s);
        let old = db.index("R", &[0]);
        db.index("S", &[0]);
        assert_eq!(old.lookup1(1), &[0]);
        assert_eq!(db.cached_indexes(), 2);

        // Replace R with different contents: the stale entry must never be
        // served again, while S's cache entry survives.
        let mut r2 = Relation::new("R", 2);
        r2.push_edge(2, 20, 0.0);
        r2.push_edge(2, 30, 0.0);
        db.add(r2);
        assert_eq!(db.cached_indexes(), 1, "only S's index survives");
        let fresh = db.index("R", &[0]);
        assert!(!Arc::ptr_eq(&old, &fresh));
        assert!(fresh.lookup1(1).is_empty(), "stale key is gone");
        assert_eq!(fresh.lookup1(2), &[0, 1], "new data is indexed");
        // The old Arc still describes its snapshot (no use-after-free).
        assert_eq!(old.lookup1(1), &[0]);
    }

    #[test]
    fn replacing_a_dictionary_backed_relation_drops_index_and_stale_dictionary() {
        use crate::Schema;

        let mut db = Database::new();
        let mut r = Relation::with_schema("R", Schema::text_shared(2));
        r.push_text_edge("alice", "bob", 0.0); // alice=0, bob=1
        db.add(r);
        let old_index = db.index("R", &[0]);
        let old_dict = db.dictionary("R", 0).expect("text column");
        assert_eq!(db.decode("R", 0, 0).as_deref(), Some("alice"));
        assert_eq!(db.cached_indexes(), 1);

        // Replace R with a relation built over a *fresh* dictionary in which
        // the same ids mean different strings: both the cached index and the
        // old dictionary must stop being served.
        let mut r2 = Relation::with_schema("R", Schema::text_shared(2));
        r2.push_text_edge("carol", "dave", 0.0); // carol=0, dave=1
        r2.push_text_edge("carol", "erin", 0.0);
        db.add(r2);
        assert_eq!(db.cached_indexes(), 0, "stale index entry is dropped");
        let fresh_index = db.index("R", &[0]);
        assert!(!Arc::ptr_eq(&old_index, &fresh_index));
        assert_eq!(fresh_index.lookup1(0), &[0, 1], "new encoding is indexed");
        let fresh_dict = db.dictionary("R", 0).expect("text column");
        assert!(
            !Arc::ptr_eq(&old_dict, &fresh_dict),
            "stale dictionary gone"
        );
        assert_eq!(db.decode("R", 0, 0).as_deref(), Some("carol"));
        // The old handles still describe their snapshot (no use-after-free).
        assert_eq!(old_dict.decode(0).as_deref(), Some("alice"));
        assert_eq!(old_index.lookup1(0), &[0]);
    }

    #[test]
    fn eviction_never_serves_a_stale_index_after_replace() {
        // Regression: with an LRU bound small enough to churn entries, a
        // replace followed by arbitrary evictions must still always serve
        // indexes of the *current* relation contents.
        let mut db = Database::new();
        db.set_index_cache_capacity(2);
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 10, 0.0);
        db.add(r);
        let mut s = Relation::new("S", 2);
        s.push_edge(7, 70, 0.0);
        db.add(s);

        let old = db.index("R", &[0]);
        assert_eq!(old.lookup1(1), &[0]);

        // Replace R, then thrash the cache well past its capacity.
        let mut r2 = Relation::new("R", 2);
        r2.push_edge(2, 20, 0.0);
        db.add(r2);
        for _ in 0..4 {
            db.index("S", &[0]);
            db.index("S", &[1]);
            db.index("R", &[1]);
        }
        assert!(db.cached_indexes() <= 2, "LRU bound holds");
        assert!(db.index_cache_stats().evictions > 0, "cache churned");

        // However the churn shuffled entries, R's index reflects the
        // replacement, never the pre-replace snapshot.
        let fresh = db.index("R", &[0]);
        assert!(fresh.lookup1(1).is_empty(), "stale key is gone");
        assert_eq!(fresh.lookup1(2), &[0], "new data is indexed");
        // The pre-replace handle still describes its own snapshot.
        assert_eq!(old.lookup1(1), &[0]);
    }

    #[test]
    fn cache_counters_track_hits_misses_and_capacity() {
        let mut db = Database::new();
        db.set_index_cache_capacity(8);
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 10, 0.0);
        db.add(r);
        assert_eq!(db.index_cache_capacity(), 8);
        let before = db.index_cache_stats();
        db.index("R", &[0]); // miss
        db.index("R", &[0]); // hit
        db.index("R", &[1]); // miss
        let after = db.index_cache_stats();
        assert_eq!(after.misses - before.misses, 2);
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.entries, 2);
        assert_eq!(after.capacity, 8);
        assert!(after.hit_ratio() > 0.0);
    }

    #[test]
    fn clone_keeps_cache_warm_and_consistent() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        r.push_edge(5, 50, 0.0);
        db.add(r);
        db.index("R", &[0]);
        let cloned = db.clone();
        assert_eq!(cloned.cached_indexes(), 1);
        assert_eq!(cloned.index("R", &[0]).lookup1(5), &[0]);
    }
}
