//! Databases: catalogs of named relations, with a shared index cache.
//!
//! ## Index cache
//!
//! Several engine passes build the same [`HashIndex`] independently: the
//! equi-join compilation indexes each parent relation by its join key, the
//! naive-SQL baseline indexes every atom's relation by its bound columns, and
//! the cycle decomposition indexes the same oriented partition once per heavy
//! tree. [`Database::index`] memoises indexes per **(relation slot, key
//! columns)** in a sharded, `RwLock`-guarded, LRU-bounded cache (see
//! [`crate::index_cache`]), handing out cheap [`Arc`] clones; repeated
//! requests for the same key pay one hash-map probe under a read lock
//! instead of an `O(n)` rebuild, and concurrent readers — e.g. many query
//! sessions preprocessing over one shared snapshot — never block each other.
//!
//! The cache is bounded: a long-lived service over ad-hoc queries evicts its
//! least-recently-used indexes instead of growing without limit
//! ([`Database::set_index_cache_capacity`], `ANYK_INDEX_CACHE_CAP`), with
//! hit/miss/eviction counters exposed via [`Database::index_cache_stats`].
//!
//! The cache is invalidated when [`Database::add`] **replaces** a relation:
//! every cached index of the replaced slot is dropped, so a stale index is
//! never served (indexes are immutable snapshots of the relation they were
//! built from). Cloning a database clones the cache too — the `Arc`ed indexes
//! themselves are shared, which is sound because they are immutable and the
//! cloned relations are bit-identical.
//!
//! ## Snapshots: generations and sealing
//!
//! A database that a query service hands out as a read snapshot must never
//! mutate under its readers. Two mechanisms enforce and track this:
//!
//! * **Sealing** ([`Database::seal`]) — a sealed database rejects
//!   [`Database::add`] / [`Database::add_shared`] with a panic. Serving code
//!   seals every snapshot it publishes; the only way forward from a sealed
//!   snapshot is a *new* database via [`Database::apply_delta`] (or an
//!   unsealed [`Clone`]).
//! * **Generations** ([`Database::generation`]) — a monotone id stamped into
//!   every index-cache key, so two snapshots that reuse the same relation
//!   *slot* across a rotation can never serve each other's indexes, even if
//!   cache state leaks across via clones.
//!
//! [`Database::apply_delta`] is the copy-on-write ingestion path: it builds a
//! new database with the batch's edits applied (untouched relations
//! `Arc`-shared, touched relations rebuilt once), bumps the generation, and
//! re-keys surviving cache entries so untouched-slot indexes stay warm.

use crate::delta::{DeltaBatch, DeltaError};
use crate::index::HashIndex;
use crate::index_cache::{default_index_cache_capacity, IndexCache, IndexCacheStats};
use crate::relation::Relation;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// An in-memory database: an ordered catalog of relations addressed by name.
///
/// Relations are stored behind `Arc`s: cloning a database, or registering
/// one database's relation in another (see [`Database::add_shared`], used by
/// the engine's selection pushdown for the atoms a predicate does *not*
/// touch), shares the columnar data instead of copying it. The sharing is
/// sound because stored relations are immutable — mutation happens on an
/// owned [`Relation`] before [`Database::add`] hands it over.
#[derive(Debug)]
pub struct Database {
    relations: Vec<Arc<Relation>>,
    by_name: HashMap<String, usize>,
    /// Memoised hash indexes per (generation, relation slot, key columns).
    index_cache: IndexCache,
    /// Monotone snapshot id; bumped by [`Database::apply_delta`] and stamped
    /// into every index-cache key.
    generation: u64,
    /// Once set, structural mutation ([`Database::add`]/
    /// [`Database::add_shared`]) panics. `&self` so a served `Arc<Database>`
    /// can be sealed in place.
    sealed: AtomicBool,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            relations: Vec::new(),
            by_name: HashMap::new(),
            index_cache: IndexCache::new(default_index_cache_capacity()),
            generation: 0,
            sealed: AtomicBool::new(false),
        }
    }
}

impl Clone for Database {
    /// Clones are **unsealed**: a clone is a fresh private copy (relations
    /// `Arc`-shared, cache warm but independent), so the original's
    /// served-snapshot protection does not transfer. The generation carries
    /// over — the clone still describes the same data version.
    fn clone(&self) -> Self {
        Database {
            relations: self.relations.clone(),
            by_name: self.by_name.clone(),
            index_cache: self.index_cache.clone(),
            generation: self.generation,
            sealed: AtomicBool::new(false),
        }
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Add a relation. If a relation with the same name exists it is
    /// replaced (and its slot reused), mirroring `CREATE OR REPLACE TABLE`.
    /// Replacing drops every cached index of the old relation.
    ///
    /// # Panics
    /// Panics if the database is [sealed](Database::seal) — a served
    /// snapshot must not mutate under live readers; ingest through
    /// [`Database::apply_delta`] instead.
    pub fn add(&mut self, relation: Relation) {
        self.add_shared(Arc::new(relation));
    }

    /// Add an already-shared relation without copying its data — e.g. to
    /// register another database's relation in a scratch database (the
    /// selection-pushdown pass shares every unfiltered relation this way).
    /// Same replace semantics (and same sealed-snapshot panic) as
    /// [`Database::add`].
    pub fn add_shared(&mut self, relation: Arc<Relation>) {
        assert!(
            !self.is_sealed(),
            "cannot mutate a sealed database snapshot (relation `{}`): \
             served snapshots are immutable — ingest a DeltaBatch via \
             `Database::apply_delta` to produce a new generation instead",
            relation.name()
        );
        match self.by_name.get(relation.name()) {
            Some(&idx) => {
                self.relations[idx] = relation;
                self.index_cache.invalidate_slot(idx);
            }
            None => {
                self.by_name
                    .insert(relation.name().to_string(), self.relations.len());
                self.relations.push(relation);
            }
        }
    }

    /// Seal the database: any further [`Database::add`] /
    /// [`Database::add_shared`] panics. Takes `&self` so serving code can
    /// seal a snapshot already shared behind an `Arc`. Sealing is
    /// irreversible for this instance; [`Clone`] yields an unsealed copy.
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::Release);
    }

    /// Whether this database has been [sealed](Database::seal).
    pub fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::Acquire)
    }

    /// This snapshot's generation id (see the module docs). Fresh databases
    /// start at 0; [`Database::apply_delta`] bumps it by one,
    /// [`Database::set_generation`] sets it outright (rotation to an
    /// unrelated snapshot).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Stamp this database with generation `generation`, re-keying any
    /// already-cached indexes so they stay warm under the new id. Used when
    /// rotating a freshly built database into a serving slot whose
    /// generation counter has moved past the default 0.
    pub fn set_generation(&mut self, generation: u64) {
        let old = self.generation;
        self.generation = generation;
        self.index_cache.rekey_generation(old, generation);
    }

    /// Copy-on-write delta ingestion: a **new** database with `batch`
    /// applied. The receiver (typically a sealed, served snapshot) is not
    /// touched. In the result:
    ///
    /// * untouched relations are `Arc`-shared with the source;
    /// * each touched relation is rebuilt once via
    ///   [`Relation::apply_delta`] (survivors keep their order, inserts
    ///   appended — see [`crate::delta`] for the tuple-id remapping rule);
    /// * the generation is the source's plus one;
    /// * index-cache entries for untouched slots stay warm (re-keyed to the
    ///   new generation); entries for touched slots are dropped.
    ///
    /// The whole batch is validated up front, so `Err` means nothing was
    /// built. The result is unsealed — the caller seals it when serving it.
    pub fn apply_delta(&self, batch: &DeltaBatch) -> Result<Database, DeltaError> {
        for delta in &batch.relations {
            let rel = self
                .get(&delta.relation)
                .ok_or_else(|| DeltaError::UnknownRelation(delta.relation.clone()))?;
            for tuple in &delta.inserts {
                if tuple.values().len() != rel.arity() {
                    return Err(DeltaError::ArityMismatch {
                        relation: delta.relation.clone(),
                        expected: rel.arity(),
                        got: tuple.values().len(),
                    });
                }
            }
            if let Some(&tid) = delta.deletes.iter().max() {
                if tid >= rel.len() {
                    return Err(DeltaError::DeleteOutOfRange {
                        relation: delta.relation.clone(),
                        tid,
                        len: rel.len(),
                    });
                }
            }
        }
        let mut next = self.clone(); // unsealed, relations shared, cache warm
        for delta in &batch.relations {
            if delta.is_empty() {
                continue;
            }
            let rel = self.expect(&delta.relation);
            let patched = rel.apply_delta(&delta.sorted_deletes(), &delta.inserts);
            // add_shared drops the touched slot's cache entries (all
            // generations of it — invalidate_slot is generation-blind).
            next.add_shared(Arc::new(patched));
        }
        next.generation = self.generation + 1;
        // Untouched-slot entries survive under the new generation id.
        next.index_cache
            .rekey_generation(self.generation, next.generation);
        Ok(next)
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.by_name.get(name).map(|&i| self.relations[i].as_ref())
    }

    /// Look up a relation by name as a shareable handle (see
    /// [`Database::add_shared`]).
    pub fn get_shared(&self, name: &str) -> Option<Arc<Relation>> {
        self.by_name
            .get(name)
            .map(|&i| Arc::clone(&self.relations[i]))
    }

    /// Look up a relation by name, panicking with a clear message if absent.
    pub fn expect(&self, name: &str) -> &Relation {
        self.get(name)
            .unwrap_or_else(|| panic!("relation `{name}` not found in database"))
    }

    /// The hash index of `name` over `key_columns`, built on first request
    /// and memoised for subsequent ones. The returned [`Arc`] stays valid
    /// even if the relation is later replaced or the cache entry is evicted
    /// (it describes the snapshot it was built from); the *cache* entry,
    /// however, is dropped on replace, so a fresh request after a replace
    /// always sees the new data. Requests from many threads over a shared
    /// database proceed concurrently (hits take only a shard read lock).
    ///
    /// # Panics
    /// Panics if the relation does not exist or a key column is out of range.
    pub fn index(&self, name: &str, key_columns: &[usize]) -> Arc<HashIndex> {
        let slot = *self
            .by_name
            .get(name)
            .unwrap_or_else(|| panic!("relation `{name}` not found in database"));
        self.index_cache
            .get_or_build((self.generation, slot, key_columns.to_vec()), || {
                HashIndex::build(&self.relations[slot], key_columns)
            })
    }

    /// Number of indexes currently memoised (diagnostics / tests).
    pub fn cached_indexes(&self) -> usize {
        self.index_cache.len()
    }

    /// Hit/miss/eviction counters and occupancy of the index cache.
    pub fn index_cache_stats(&self) -> IndexCacheStats {
        self.index_cache.stats()
    }

    /// The hard bound on the number of cached indexes.
    pub fn index_cache_capacity(&self) -> usize {
        self.index_cache.capacity()
    }

    /// Re-bound the index cache to `capacity` entries (clamped to ≥ 1),
    /// keeping the most recently used entries. Typically called once while
    /// the database is still exclusively owned, before sharing it behind an
    /// `Arc` with a query service.
    pub fn set_index_cache_capacity(&mut self, capacity: usize) {
        self.index_cache.set_capacity(capacity);
    }

    /// The dictionary of column `col` of relation `name`, if that column is
    /// dictionary-encoded. Replacing the relation via [`Database::add`]
    /// swaps in the replacement's schema, so a handle obtained *before* the
    /// replace keeps describing the old snapshot while new requests see the
    /// new dictionary.
    ///
    /// # Panics
    /// Panics if the relation does not exist or `col` is out of range.
    pub fn dictionary(&self, name: &str, col: usize) -> Option<Arc<crate::Dictionary>> {
        self.expect(name).dictionary(col).cloned()
    }

    /// Decode `value` through the dictionary of column `col` of relation
    /// `name`: the original string for a known id of a text column, `None`
    /// for raw-id columns or unknown ids.
    ///
    /// # Panics
    /// Panics if the relation does not exist or `col` is out of range.
    pub fn decode(&self, name: &str, col: usize, value: crate::Value) -> Option<String> {
        self.expect(name)
            .dictionary(col)
            .and_then(|d| d.decode(value))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the database has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate over all relations in insertion order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.iter().map(|r| r.as_ref())
    }

    /// The maximum relation cardinality `n` (the paper's input-size
    /// parameter), or 0 for an empty database.
    pub fn max_cardinality(&self) -> usize {
        self.relations().map(Relation::len).max().unwrap_or(0)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    #[test]
    fn add_get_and_replace() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 1);
        r.push(Tuple::unweighted(vec![1]));
        db.add(r);
        assert_eq!(db.len(), 1);
        assert_eq!(db.expect("R").len(), 1);

        let mut r2 = Relation::new("R", 1);
        r2.push(Tuple::unweighted(vec![1]));
        r2.push(Tuple::unweighted(vec![2]));
        db.add(r2);
        assert_eq!(db.len(), 1, "replacement keeps a single slot");
        assert_eq!(db.expect("R").len(), 2);
        assert!(db.get("S").is_none());
    }

    #[test]
    fn cardinality_statistics() {
        let mut db = Database::new();
        for (name, n) in [("A", 3), ("B", 7)] {
            let mut r = Relation::new(name, 1);
            for i in 0..n {
                r.push(Tuple::unweighted(vec![i]));
            }
            db.add(r);
        }
        assert_eq!(db.max_cardinality(), 7);
        assert_eq!(db.total_tuples(), 10);
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn expect_missing_panics() {
        Database::new().expect("nope");
    }

    #[test]
    fn index_is_cached_and_shared() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 10, 0.0);
        r.push_edge(1, 20, 0.0);
        db.add(r);
        let a = db.index("R", &[0]);
        let b = db.index("R", &[0]);
        assert!(Arc::ptr_eq(&a, &b), "second request hits the cache");
        assert_eq!(db.cached_indexes(), 1);
        let c = db.index("R", &[1]);
        assert!(
            !Arc::ptr_eq(&a, &c),
            "different key columns, different index"
        );
        assert_eq!(db.cached_indexes(), 2);
    }

    #[test]
    fn replacing_a_relation_invalidates_its_cached_indexes() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 10, 0.0);
        db.add(r);
        let mut s = Relation::new("S", 2);
        s.push_edge(7, 70, 0.0);
        db.add(s);
        let old = db.index("R", &[0]);
        db.index("S", &[0]);
        assert_eq!(old.lookup1(1), &[0]);
        assert_eq!(db.cached_indexes(), 2);

        // Replace R with different contents: the stale entry must never be
        // served again, while S's cache entry survives.
        let mut r2 = Relation::new("R", 2);
        r2.push_edge(2, 20, 0.0);
        r2.push_edge(2, 30, 0.0);
        db.add(r2);
        assert_eq!(db.cached_indexes(), 1, "only S's index survives");
        let fresh = db.index("R", &[0]);
        assert!(!Arc::ptr_eq(&old, &fresh));
        assert!(fresh.lookup1(1).is_empty(), "stale key is gone");
        assert_eq!(fresh.lookup1(2), &[0, 1], "new data is indexed");
        // The old Arc still describes its snapshot (no use-after-free).
        assert_eq!(old.lookup1(1), &[0]);
    }

    #[test]
    fn replacing_a_dictionary_backed_relation_drops_index_and_stale_dictionary() {
        use crate::Schema;

        let mut db = Database::new();
        let mut r = Relation::with_schema("R", Schema::text_shared(2));
        r.push_text_edge("alice", "bob", 0.0); // alice=0, bob=1
        db.add(r);
        let old_index = db.index("R", &[0]);
        let old_dict = db.dictionary("R", 0).expect("text column");
        assert_eq!(db.decode("R", 0, 0).as_deref(), Some("alice"));
        assert_eq!(db.cached_indexes(), 1);

        // Replace R with a relation built over a *fresh* dictionary in which
        // the same ids mean different strings: both the cached index and the
        // old dictionary must stop being served.
        let mut r2 = Relation::with_schema("R", Schema::text_shared(2));
        r2.push_text_edge("carol", "dave", 0.0); // carol=0, dave=1
        r2.push_text_edge("carol", "erin", 0.0);
        db.add(r2);
        assert_eq!(db.cached_indexes(), 0, "stale index entry is dropped");
        let fresh_index = db.index("R", &[0]);
        assert!(!Arc::ptr_eq(&old_index, &fresh_index));
        assert_eq!(fresh_index.lookup1(0), &[0, 1], "new encoding is indexed");
        let fresh_dict = db.dictionary("R", 0).expect("text column");
        assert!(
            !Arc::ptr_eq(&old_dict, &fresh_dict),
            "stale dictionary gone"
        );
        assert_eq!(db.decode("R", 0, 0).as_deref(), Some("carol"));
        // The old handles still describe their snapshot (no use-after-free).
        assert_eq!(old_dict.decode(0).as_deref(), Some("alice"));
        assert_eq!(old_index.lookup1(0), &[0]);
    }

    #[test]
    fn eviction_never_serves_a_stale_index_after_replace() {
        // Regression: with an LRU bound small enough to churn entries, a
        // replace followed by arbitrary evictions must still always serve
        // indexes of the *current* relation contents.
        let mut db = Database::new();
        db.set_index_cache_capacity(2);
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 10, 0.0);
        db.add(r);
        let mut s = Relation::new("S", 2);
        s.push_edge(7, 70, 0.0);
        db.add(s);

        let old = db.index("R", &[0]);
        assert_eq!(old.lookup1(1), &[0]);

        // Replace R, then thrash the cache well past its capacity.
        let mut r2 = Relation::new("R", 2);
        r2.push_edge(2, 20, 0.0);
        db.add(r2);
        for _ in 0..4 {
            db.index("S", &[0]);
            db.index("S", &[1]);
            db.index("R", &[1]);
        }
        assert!(db.cached_indexes() <= 2, "LRU bound holds");
        assert!(db.index_cache_stats().evictions > 0, "cache churned");

        // However the churn shuffled entries, R's index reflects the
        // replacement, never the pre-replace snapshot.
        let fresh = db.index("R", &[0]);
        assert!(fresh.lookup1(1).is_empty(), "stale key is gone");
        assert_eq!(fresh.lookup1(2), &[0], "new data is indexed");
        // The pre-replace handle still describes its own snapshot.
        assert_eq!(old.lookup1(1), &[0]);
    }

    #[test]
    fn cache_counters_track_hits_misses_and_capacity() {
        let mut db = Database::new();
        db.set_index_cache_capacity(8);
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 10, 0.0);
        db.add(r);
        assert_eq!(db.index_cache_capacity(), 8);
        let before = db.index_cache_stats();
        db.index("R", &[0]); // miss
        db.index("R", &[0]); // hit
        db.index("R", &[1]); // miss
        let after = db.index_cache_stats();
        assert_eq!(after.misses - before.misses, 2);
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.entries, 2);
        assert_eq!(after.capacity, 8);
        assert!(after.hit_ratio() > 0.0);
    }

    #[test]
    #[should_panic(expected = "sealed")]
    fn sealed_database_rejects_mutation() {
        // Regression for the mutate-while-serving hole: before sealing,
        // replacing a relation on a served snapshot silently invalidated
        // cached indexes under live readers. Now it is a typed panic.
        let mut db = Database::new();
        let mut r = Relation::new("R", 1);
        r.push(Tuple::unweighted(vec![1]));
        db.add(r);
        db.seal();
        let mut r2 = Relation::new("R", 1);
        r2.push(Tuple::unweighted(vec![2]));
        db.add(r2); // must panic, not replace
    }

    #[test]
    fn seal_works_through_a_shared_handle_and_clones_are_unsealed() {
        let mut db = Database::new();
        db.add(Relation::new("R", 1));
        let shared = Arc::new(db);
        shared.seal(); // &self sealing, as a query service does at over()
        assert!(shared.is_sealed());
        let copy = shared.as_ref().clone();
        assert!(!copy.is_sealed(), "clones start unsealed");
    }

    #[test]
    fn apply_delta_builds_a_new_generation_without_touching_the_source() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        r.push(Tuple::new(vec![1, 10], 1.0));
        r.push(Tuple::new(vec![2, 20], 2.0));
        r.push(Tuple::new(vec![3, 30], 3.0));
        db.add(r);
        let mut s = Relation::new("S", 1);
        s.push(Tuple::new(vec![9], 9.0));
        db.add(s);
        db.seal();

        let batch = crate::delta::DeltaBatch::new()
            .delete("R", 1)
            .insert("R", Tuple::new(vec![4, 40], 4.0));
        let next = db.apply_delta(&batch).expect("valid batch");

        // Source untouched, sealed, generation 0.
        assert_eq!(db.generation(), 0);
        assert_eq!(db.expect("R").len(), 3);
        // New snapshot: generation bumped, unsealed, survivors compacted.
        assert_eq!(next.generation(), 1);
        assert!(!next.is_sealed());
        let r = next.expect("R");
        assert_eq!(r.len(), 3);
        assert_eq!(r.tuple(0).values_vec(), vec![1, 10]);
        assert_eq!(r.tuple(1).values_vec(), vec![3, 30], "shifted past delete");
        assert_eq!(r.tuple(2).values_vec(), vec![4, 40], "insert appended");
        // Untouched relation is shared, not copied.
        assert!(Arc::ptr_eq(
            &db.get_shared("S").unwrap(),
            &next.get_shared("S").unwrap()
        ));
    }

    #[test]
    fn apply_delta_validates_before_building() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        r.push(Tuple::new(vec![1, 10], 1.0));
        db.add(r);

        let unknown = crate::delta::DeltaBatch::new().delete("Q", 0);
        assert!(matches!(
            db.apply_delta(&unknown),
            Err(DeltaError::UnknownRelation(name)) if name == "Q"
        ));
        let bad_arity = crate::delta::DeltaBatch::new().insert("R", Tuple::new(vec![1], 0.0));
        assert!(matches!(
            db.apply_delta(&bad_arity),
            Err(DeltaError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
        let oob = crate::delta::DeltaBatch::new().delete("R", 5);
        assert!(matches!(
            db.apply_delta(&oob),
            Err(DeltaError::DeleteOutOfRange { tid: 5, len: 1, .. })
        ));
    }

    #[test]
    fn apply_delta_keeps_untouched_slot_indexes_warm_and_drops_touched() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 10, 0.0);
        db.add(r);
        let mut s = Relation::new("S", 2);
        s.push_edge(7, 70, 0.0);
        db.add(s);
        let r_index = db.index("R", &[0]);
        let s_index = db.index("S", &[0]);
        assert_eq!(db.cached_indexes(), 2);

        let batch = crate::delta::DeltaBatch::new().insert("R", Tuple::new(vec![2, 20], 0.0));
        let next = db.apply_delta(&batch).expect("valid batch");

        // Touched slot (R) dropped; untouched slot (S) carried warm across
        // the generation bump — same Arc, no rebuild.
        assert_eq!(next.cached_indexes(), 1);
        let s_again = next.index("S", &[0]);
        assert!(Arc::ptr_eq(&s_index, &s_again), "S stayed warm");
        let r_fresh = next.index("R", &[0]);
        assert!(!Arc::ptr_eq(&r_index, &r_fresh), "R was rebuilt");
        assert_eq!(r_fresh.lookup1(1), &[0]);
        assert_eq!(r_fresh.lookup1(2), &[1]);
        // The source database's own cache still serves its generation.
        assert!(Arc::ptr_eq(&db.index("R", &[0]), &r_index));
    }

    #[test]
    fn generation_keys_prevent_stale_index_reuse_across_rotation() {
        // Regression for slot reuse across rotations: slot indices restart
        // from 0 in a rebuilt database, so without the generation in the
        // cache key a warm clone of the old cache could serve generation-0
        // indexes for generation-1 data.
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 10, 0.0);
        db.add(r);
        let old_index = db.index("R", &[0]);
        assert_eq!(old_index.lookup1(1), &[0]);

        // Rotate: same slot layout, different contents, warm cache clone.
        let mut rotated = db.clone();
        let mut r2 = Relation::new("R", 2);
        r2.push_edge(2, 20, 0.0);
        rotated.add(r2); // invalidates the touched slot...
        rotated.set_generation(db.generation() + 1); // ...and re-keys the rest

        let fresh = rotated.index("R", &[0]);
        assert!(!Arc::ptr_eq(&old_index, &fresh), "not the stale index");
        assert!(fresh.lookup1(1).is_empty());
        assert_eq!(fresh.lookup1(2), &[0]);
        // And the original still serves its own generation unharmed.
        assert!(Arc::ptr_eq(&db.index("R", &[0]), &old_index));
    }

    #[test]
    fn clone_keeps_cache_warm_and_consistent() {
        let mut db = Database::new();
        let mut r = Relation::new("R", 2);
        r.push_edge(5, 50, 0.0);
        db.add(r);
        db.index("R", &[0]);
        let cloned = db.clone();
        assert_eq!(cloned.cached_indexes(), 1);
        assert_eq!(cloned.index("R", &[0]).lookup1(5), &[0]);
    }
}
