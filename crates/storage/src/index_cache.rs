//! A bounded, sharded, read-mostly cache of memoised [`HashIndex`]es.
//!
//! [`Database::index`](crate::Database::index) memoises indexes per
//! **(relation slot, key columns)**. A long-lived service evaluating ad-hoc
//! queries touches an unbounded set of such keys, so the cache is bounded by
//! an **LRU** policy with a configurable capacity (default
//! [`DEFAULT_INDEX_CACHE_CAPACITY`], overridable process-wide with the
//! `ANYK_INDEX_CACHE_CAP` environment variable or per database with
//! [`Database::set_index_cache_capacity`](crate::Database::set_index_cache_capacity)).
//!
//! ## Concurrency
//!
//! The cache is **sharded**: keys hash to one of up to
//! [`MAX_SHARDS`] independent `RwLock`-guarded maps, so concurrent readers —
//! many sessions preprocessing over the same shared snapshot — never block
//! each other (hits take a read lock and bump an atomic recency tick), and
//! writers only serialise within one shard. Index construction itself runs
//! *outside* any lock; if two threads race to build the same index, the
//! first insert wins and both threads converge on the cached `Arc`.
//!
//! ## Bound
//!
//! The LRU bound is **global**: after an insert pushes the total past the
//! configured capacity, the globally least-recently-used entry is evicted
//! (whichever shard it lives in) and the eviction counter incremented, so
//! the total number of cached indexes never settles above the capacity and
//! a skewed key distribution cannot thrash one shard while others sit
//! empty. Evicted `Arc`s already handed out stay valid — they are
//! immutable snapshots — and a re-request simply rebuilds from the
//! *current* relation contents, so eviction can never serve stale data.

use crate::index::HashIndex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Cache key: (snapshot generation, relation slot, key columns). The slot —
/// not the name — keys the cache so that replacement invalidation is a
/// simple retain. The **generation** guards against slot reuse across
/// snapshot rotations: two databases derived from one another (a
/// copy-on-write snapshot and its delta-patched successor) reuse the same
/// slot index for different relation contents, so a cache shared — or
/// warm-cloned — between them must never serve generation-g data to a
/// generation-g' request.
pub(crate) type IndexKey = (u64, usize, Vec<usize>);

/// Default number of cached indexes when neither `ANYK_INDEX_CACHE_CAP` nor
/// [`Database::set_index_cache_capacity`](crate::Database::set_index_cache_capacity)
/// says otherwise. Generous for the paper's workloads (a path-ℓ query needs
/// ℓ indexes) while keeping a service over ad-hoc queries bounded.
pub const DEFAULT_INDEX_CACHE_CAPACITY: usize = 64;

/// Upper bound on the number of shards (fewer are used when the capacity is
/// smaller, so the global bound stays exact).
const MAX_SHARDS: usize = 8;

/// The capacity used by fresh [`Database`](crate::Database)s: the
/// `ANYK_INDEX_CACHE_CAP` environment variable (parsed once per process,
/// clamped to ≥ 1) or [`DEFAULT_INDEX_CACHE_CAPACITY`].
pub fn default_index_cache_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| parse_capacity(std::env::var("ANYK_INDEX_CACHE_CAP").ok()))
}

/// `ANYK_INDEX_CACHE_CAP` parsing: a positive integer (clamped to ≥ 1);
/// anything else falls back to [`DEFAULT_INDEX_CACHE_CAPACITY`].
fn parse_capacity(var: Option<String>) -> usize {
    var.and_then(|s| s.trim().parse::<usize>().ok())
        .map(|c| c.max(1))
        .unwrap_or(DEFAULT_INDEX_CACHE_CAPACITY)
}

/// A point-in-time snapshot of the cache's counters, for capacity planning
/// and the service-level metrics endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexCacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to build the index (including races where another
    /// thread's build won the insert).
    pub misses: u64,
    /// Entries evicted by the LRU bound (replacement invalidation is *not*
    /// counted here).
    pub evictions: u64,
    /// Indexes currently cached.
    pub entries: usize,
    /// Configured capacity (the hard bound on `entries`).
    pub capacity: usize,
}

impl IndexCacheStats {
    /// Hit ratio over all requests so far (0.0 for an unused cache).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    index: Arc<HashIndex>,
    /// Logical-clock tick of the most recent request (atomic so that cache
    /// *hits* can refresh recency under the shard's read lock).
    last_used: AtomicU64,
}

/// The sharded LRU cache. Owned by [`crate::Database`]; all methods take
/// `&self` so a database shared behind an `Arc` stays fully usable.
pub(crate) struct IndexCache {
    shards: Vec<RwLock<HashMap<IndexKey, Entry>>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for IndexCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexCache")
            .field("stats", &self.stats())
            .finish()
    }
}

/// A poisoned lock only means another thread panicked mid-operation; the
/// maps themselves are always in a consistent state.
fn read_shard(
    shard: &RwLock<HashMap<IndexKey, Entry>>,
) -> RwLockReadGuard<'_, HashMap<IndexKey, Entry>> {
    shard.read().unwrap_or_else(|p| p.into_inner())
}

fn write_shard(
    shard: &RwLock<HashMap<IndexKey, Entry>>,
) -> RwLockWriteGuard<'_, HashMap<IndexKey, Entry>> {
    shard.write().unwrap_or_else(|p| p.into_inner())
}

impl IndexCache {
    /// An empty cache bounded to `capacity` entries (clamped to ≥ 1).
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        // One shard per ~8 entries of capacity (at most MAX_SHARDS): small
        // caches stay a single map, large caches spread write locks. The
        // LRU bound itself is *global* (see `enforce_bound`), so the shard
        // count only affects lock granularity, never eviction behaviour.
        let shards = (capacity / MAX_SHARDS).clamp(1, MAX_SHARDS);
        IndexCache {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rebuild the cache with a new capacity, keeping current entries (up to
    /// the new bound; overflow is evicted LRU-first).
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        let mut entries: Vec<(IndexKey, Entry)> = self
            .shards
            .iter_mut()
            .flat_map(|s| {
                s.get_mut()
                    .unwrap_or_else(|p| p.into_inner())
                    .drain()
                    .collect::<Vec<_>>()
            })
            .collect();
        // Most-recently-used first, so truncation below drops LRU entries.
        entries.sort_by_key(|(_, e)| std::cmp::Reverse(e.last_used.load(Ordering::Relaxed)));
        let next = IndexCache::new(capacity);
        next.clock
            .store(self.clock.load(Ordering::Relaxed), Ordering::Relaxed);
        next.hits
            .store(self.hits.load(Ordering::Relaxed), Ordering::Relaxed);
        next.misses
            .store(self.misses.load(Ordering::Relaxed), Ordering::Relaxed);
        let dropped = entries.len().saturating_sub(next.capacity);
        next.evictions.store(
            self.evictions.load(Ordering::Relaxed) + dropped as u64,
            Ordering::Relaxed,
        );
        entries.truncate(next.capacity);
        for (key, entry) in entries {
            let shard = next.shard_of(&key);
            write_shard(&next.shards[shard]).insert(key, entry);
        }
        *self = next;
    }

    fn shard_of(&self, key: &IndexKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The cached index for `key`, building it with `build` on a miss.
    pub(crate) fn get_or_build(
        &self,
        key: IndexKey,
        build: impl FnOnce() -> HashIndex,
    ) -> Arc<HashIndex> {
        let shard = &self.shards[self.shard_of(&key)];
        if let Some(entry) = read_shard(shard).get(&key) {
            entry.last_used.store(self.tick(), Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&entry.index);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Build outside any lock: readers of other keys (and of other
        // shards) proceed concurrently with this potentially long scan.
        let built = Arc::new(build());
        let mut guard = write_shard(shard);
        let tick = self.tick();
        let entry = guard.entry(key).or_insert_with(|| Entry {
            index: built,
            last_used: AtomicU64::new(0),
        });
        *entry.last_used.get_mut() = tick;
        let out = Arc::clone(&entry.index);
        drop(guard);
        self.enforce_bound();
        out
    }

    /// Evict globally least-recently-used entries until the cache is within
    /// its capacity. Called with no locks held; each round picks the victim
    /// under read locks, then removes it under its shard's write lock
    /// (re-checking recency, in case the entry was touched meanwhile).
    /// Global — not per-shard — eviction means a skewed key distribution
    /// never evicts hot entries while the cache has free capacity.
    fn enforce_bound(&self) {
        while self.len() > self.capacity {
            let mut victim: Option<(usize, IndexKey, u64)> = None;
            for (si, shard) in self.shards.iter().enumerate() {
                for (key, entry) in read_shard(shard).iter() {
                    let tick = entry.last_used.load(Ordering::Relaxed);
                    if victim.as_ref().is_none_or(|&(_, _, best)| tick < best) {
                        victim = Some((si, key.clone(), tick));
                    }
                }
            }
            let Some((si, key, tick)) = victim else {
                return;
            };
            let mut guard = write_shard(&self.shards[si]);
            let still_lru = guard
                .get(&key)
                .is_some_and(|e| e.last_used.load(Ordering::Relaxed) == tick);
            if still_lru {
                guard.remove(&key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            // If the victim was touched (or removed) meanwhile, re-check the
            // bound and re-pick.
        }
    }

    /// Drop every cached index of relation slot `slot`, across **all**
    /// generations (replacement invalidation; not counted as eviction).
    /// Invalidation is generation-blind on purpose: a replace means the slot
    /// holds new data, and no generation may keep serving indexes of the
    /// contents the slot held before.
    pub(crate) fn invalidate_slot(&self, slot: usize) {
        for shard in &self.shards {
            write_shard(shard).retain(|&(_, s, _), _| s != slot);
        }
    }

    /// Re-key every entry of generation `old_gen` to `new_gen` (moving the
    /// entry, which may land in a different shard). Used by delta ingestion:
    /// the patched snapshot's warm-cloned cache keeps the untouched slots'
    /// indexes valid under the *new* generation, while the touched slots
    /// were already dropped by [`IndexCache::invalidate_slot`].
    pub(crate) fn rekey_generation(&self, old_gen: u64, new_gen: u64) {
        if old_gen == new_gen {
            return;
        }
        let mut moved: Vec<(IndexKey, Entry)> = Vec::new();
        for shard in &self.shards {
            let mut guard = write_shard(shard);
            let keys: Vec<IndexKey> = guard
                .keys()
                .filter(|&&(g, _, _)| g == old_gen)
                .cloned()
                .collect();
            for key in keys {
                if let Some(entry) = guard.remove(&key) {
                    moved.push(((new_gen, key.1, key.2), entry));
                }
            }
        }
        for (key, entry) in moved {
            let shard = self.shard_of(&key);
            write_shard(&self.shards[shard]).insert(key, entry);
        }
    }

    /// Number of indexes currently cached.
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| read_shard(s).len()).sum()
    }

    /// Counter snapshot.
    pub(crate) fn stats(&self) -> IndexCacheStats {
        IndexCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
        }
    }
}

impl Clone for IndexCache {
    /// Clones share the cached `Arc`ed indexes (immutable snapshots of
    /// relations that are cloned verbatim) but have independent locks and
    /// counters, warm-started from the source's.
    fn clone(&self) -> Self {
        let mut cloned = IndexCache::new(self.capacity);
        cloned.clock = AtomicU64::new(self.clock.load(Ordering::Relaxed));
        cloned.hits = AtomicU64::new(self.hits.load(Ordering::Relaxed));
        cloned.misses = AtomicU64::new(self.misses.load(Ordering::Relaxed));
        cloned.evictions = AtomicU64::new(self.evictions.load(Ordering::Relaxed));
        for shard in &self.shards {
            for (key, entry) in read_shard(shard).iter() {
                let target = cloned.shard_of(key);
                write_shard(&cloned.shards[target]).insert(
                    key.clone(),
                    Entry {
                        index: Arc::clone(&entry.index),
                        last_used: AtomicU64::new(entry.last_used.load(Ordering::Relaxed)),
                    },
                );
            }
        }
        cloned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn index_of(r: &Relation) -> HashIndex {
        HashIndex::build(r, &[0])
    }

    fn edge_relation(n: u64) -> Relation {
        let mut r = Relation::new("R", 2);
        for i in 0..n {
            r.push_edge(i, i + 100, 0.0);
        }
        r
    }

    #[test]
    fn generation_in_the_key_separates_rotated_snapshots() {
        // Regression for slot reuse across rotations: the same (slot, cols)
        // under a different generation must miss, never serve the old
        // generation's index.
        let cache = IndexCache::new(8);
        let old = edge_relation(2);
        let new = edge_relation(5);
        let g0 = cache.get_or_build((0, 0, vec![0]), || index_of(&old));
        let g1 = cache.get_or_build((1, 0, vec![0]), || index_of(&new));
        assert!(!Arc::ptr_eq(&g0, &g1), "generation 1 built fresh");
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(g0.lookup1(4), &[] as &[crate::TupleId]);
        assert_eq!(g1.lookup1(4), &[4]);
        // Both generations stay independently cached.
        assert!(Arc::ptr_eq(
            &g0,
            &cache.get_or_build((0, 0, vec![0]), || index_of(&old))
        ));
        assert!(Arc::ptr_eq(
            &g1,
            &cache.get_or_build((1, 0, vec![0]), || index_of(&new))
        ));
    }

    #[test]
    fn rekey_generation_moves_entries_and_preserves_handles() {
        let cache = IndexCache::new(8);
        let r = edge_relation(3);
        let a = cache.get_or_build((0, 0, vec![0]), || index_of(&r));
        let b = cache.get_or_build((0, 1, vec![0]), || index_of(&r));
        let other = cache.get_or_build((5, 2, vec![0]), || index_of(&r));
        cache.rekey_generation(0, 7);
        // Old keys gone, new keys hit with the same Arcs; foreign
        // generations untouched.
        assert!(Arc::ptr_eq(
            &a,
            &cache.get_or_build((7, 0, vec![0]), || index_of(&r))
        ));
        assert!(Arc::ptr_eq(
            &b,
            &cache.get_or_build((7, 1, vec![0]), || index_of(&r))
        ));
        assert!(Arc::ptr_eq(
            &other,
            &cache.get_or_build((5, 2, vec![0]), || index_of(&r))
        ));
        assert_eq!(cache.stats().entries, 3, "rekey neither grows nor drops");
        let miss_count_before = cache.stats().misses;
        let rebuilt = cache.get_or_build((0, 0, vec![0]), || index_of(&r));
        assert!(!Arc::ptr_eq(&a, &rebuilt), "old generation key is gone");
        assert_eq!(cache.stats().misses, miss_count_before + 1);
    }

    #[test]
    fn capacity_one_is_a_single_slot_lru() {
        let cache = IndexCache::new(1);
        let r = edge_relation(3);
        let a = cache.get_or_build((0, 0, vec![0]), || index_of(&r));
        let a2 = cache.get_or_build((0, 0, vec![0]), || index_of(&r));
        assert!(Arc::ptr_eq(&a, &a2), "hit");
        let _b = cache.get_or_build((0, 0, vec![1]), || HashIndex::build(&r, &[1]));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "bounded to capacity");
        assert_eq!(stats.evictions, 1, "LRU entry evicted");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        // Re-requesting the evicted key rebuilds (a fresh Arc).
        let a3 = cache.get_or_build((0, 0, vec![0]), || index_of(&r));
        assert!(!Arc::ptr_eq(&a, &a3));
        assert_eq!(cache.stats().misses, 3);
        // The evicted handle still describes its snapshot.
        assert_eq!(a.lookup1(0), &[0]);
    }

    #[test]
    fn total_entries_never_exceed_capacity() {
        for cap in [1usize, 2, 3, 5, 8, 13] {
            let cache = IndexCache::new(cap);
            let r = edge_relation(4);
            for slot in 0..40 {
                cache.get_or_build((0, slot, vec![0]), || index_of(&r));
                assert!(
                    cache.len() <= cap,
                    "cap {cap}: {} entries after insert {slot}",
                    cache.len()
                );
            }
            assert!(cache.stats().evictions > 0, "cap {cap} evicted something");
        }
    }

    #[test]
    fn no_eviction_while_under_global_capacity_regardless_of_shard_skew() {
        // 30 hot keys in a 64-slot cache (8 shards): however the hash
        // scatters them, nothing may be evicted while the global bound has
        // free capacity (eviction is global, not per shard).
        let cache = IndexCache::new(64);
        let r = edge_relation(4);
        for round in 0..3 {
            for slot in 0..30 {
                cache.get_or_build((0, slot, vec![0]), || index_of(&r));
            }
            assert_eq!(cache.len(), 30, "round {round}");
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.misses, 30, "every key built exactly once");
        assert_eq!(stats.hits, 60);
    }

    #[test]
    fn recency_is_refreshed_by_hits() {
        // Capacity 1 ⇒ one shard, one slot: the LRU victim is always the
        // entry *not* touched most recently.
        let cache = IndexCache::new(1);
        let r = edge_relation(2);
        cache.get_or_build((0, 0, vec![0]), || index_of(&r));
        cache.get_or_build((0, 0, vec![0]), || index_of(&r)); // refresh
        cache.get_or_build((0, 1, vec![0]), || index_of(&r)); // evicts (0, [0])
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        // (1, [0]) survives: requesting it again is a hit.
        let hits_before = cache.stats().hits;
        cache.get_or_build((0, 1, vec![0]), || index_of(&r));
        assert_eq!(cache.stats().hits, hits_before + 1);
    }

    #[test]
    fn set_capacity_keeps_most_recent_entries() {
        let mut cache = IndexCache::new(8);
        let r = edge_relation(2);
        for slot in 0..6 {
            cache.get_or_build((0, slot, vec![0]), || index_of(&r));
        }
        assert_eq!(cache.len(), 6);
        cache.set_capacity(2);
        assert_eq!(cache.capacity(), 2);
        assert_eq!(cache.len(), 2);
        // The two most recently used keys (slots 4, 5) survive.
        let hits_before = cache.stats().hits;
        cache.get_or_build((0, 4, vec![0]), || index_of(&r));
        cache.get_or_build((0, 5, vec![0]), || index_of(&r));
        assert_eq!(cache.stats().hits, hits_before + 2);
    }

    #[test]
    fn env_capacity_parsing() {
        assert_eq!(parse_capacity(None), DEFAULT_INDEX_CACHE_CAPACITY);
        assert_eq!(parse_capacity(Some("12".into())), 12);
        assert_eq!(parse_capacity(Some(" 3 ".into())), 3);
        assert_eq!(parse_capacity(Some("0".into())), 1, "clamped to ≥ 1");
        assert_eq!(
            parse_capacity(Some("not-a-number".into())),
            DEFAULT_INDEX_CACHE_CAPACITY
        );
    }

    #[test]
    fn invalidation_is_not_counted_as_eviction() {
        let cache = IndexCache::new(8);
        let r = edge_relation(2);
        cache.get_or_build((0, 0, vec![0]), || index_of(&r));
        cache.get_or_build((0, 0, vec![1]), || HashIndex::build(&r, &[1]));
        cache.get_or_build((0, 1, vec![0]), || index_of(&r));
        cache.invalidate_slot(0);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 0);
    }
}
