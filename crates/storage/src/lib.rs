//! # anyk-storage
//!
//! In-memory weighted relational storage substrate for the any-k engine.
//!
//! The paper's algorithms operate over full conjunctive queries on relations
//! whose tuples carry real-valued weights (§2.1–§2.3). This crate provides
//! exactly that substrate:
//!
//! * [`Tuple`] — an owned, fixed-arity row of `u64` attribute values plus a
//!   weight (the construction/value currency);
//! * [`Relation`] — a named bag of equal-arity tuples in **column-major**
//!   layout (one flat vector per attribute plus a weight column), with the
//!   borrowed row view [`RowRef`];
//! * [`dictionary`] — the text layer: per-column string [`Dictionary`]s and
//!   the [`Schema`] column-type descriptor, so string-keyed relations encode
//!   to dense ids on push and decode on read while everything below the
//!   columns stays integer-only;
//! * [`Database`] — a catalog of relations addressed by name, memoising
//!   [`HashIndex`]es per (generation, relation slot, key columns) in a
//!   sharded, LRU-bounded [`index_cache`] (readers concurrent, bound
//!   configurable, counters exposed) and invalidating entries when a
//!   relation is replaced; snapshots can be **sealed** against mutation and
//!   advanced copy-on-write via [`delta`] batches
//!   ([`Database::apply_delta`]), which bump a monotone generation id;
//! * [`shard`] — hash partitioning: [`ShardSpec`] routes tuples by a
//!   deterministic hash of their join-key columns and
//!   [`Database::partition`] splits a snapshot into co-partitioned,
//!   dictionary-sharing shard databases (replicating unlisted relations),
//!   with [`ShardSpec::split_batch`] routing delta batches the same way;
//! * [`HashIndex`] — the linear-time-buildable, constant-time-lookup join
//!   index assumed by the cost model of §2.3, built by sequential column
//!   scans;
//! * [`stats`] — per-column degree statistics (used by the heavy/light
//!   partitioning of §5.3.1 and the dataset summaries of Fig. 9).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod database;
pub mod delta;
pub mod dictionary;
mod index;
pub mod index_cache;
mod relation;
pub mod shard;
pub mod stats;
mod tuple;

pub use database::Database;
pub use delta::{DeltaBatch, DeltaError, RelationDelta, TidRemap};
pub use dictionary::{ColumnType, Dictionary, Field, Schema};
pub use index::HashIndex;
pub use index_cache::{IndexCacheStats, DEFAULT_INDEX_CACHE_CAPACITY};
pub use relation::{Relation, RowRef};
pub use shard::{ShardError, ShardSpec};
pub use tuple::{Tuple, TupleId, Value};
