//! Per-column string dictionaries: the text layer over the columnar storage.
//!
//! The engine's hot loops (index builds, T-DP compilation, any-k expansion)
//! only ever see dense `u64` [`Value`]s. Text workloads are opened up by
//! *dictionary encoding*: a [`Dictionary`] interns each distinct string once
//! and hands out a dense id, [`Schema`] records per column whether it holds
//! raw ids ([`ColumnType::Id`]) or dictionary-encoded text
//! ([`ColumnType::Text`]), and [`crate::Relation::push_fields`] /
//! [`crate::RowRef::decoded`] do the encode-on-push / decode-on-read at the
//! storage boundary. Nothing downstream of the columns changes: joins,
//! indexes and the any-k core operate on the ids exactly as they do on
//! integer-keyed data.
//!
//! ## Sharing dictionaries across columns and relations
//!
//! Equi-joins compare **ids**, so two text columns that are joined against
//! each other must encode through the *same* dictionary (otherwise the same
//! string could map to different ids and the join would silently miss).
//! Dictionaries are therefore handed around as [`Arc`]s: cloning a [`Schema`]
//! shares its dictionaries, so building several relations from one schema —
//! e.g. the ℓ copies of an edge relation used by path/star/cycle queries —
//! keeps their encodings aligned. [`Schema::text_shared`] is the common case
//! (every column of every copy drawn from one namespace, like usernames);
//! [`Schema::text`] gives each column its own dictionary for star-schema-like
//! data where columns are independent namespaces.

use crate::tuple::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// An append-only string interner: string → dense id, id → string.
///
/// Ids are dense (`0..len()`), assigned in first-encounter order, and
/// **stable**: once a string has an id, later [`encode`](Dictionary::encode)
/// calls — including calls interleaved with other strings or made from other
/// relations sharing the dictionary — return the same id. Interior mutability
/// (a mutex around the two-way map) lets relations share one dictionary
/// through an [`Arc`] while still encoding on push.
#[derive(Debug, Default)]
pub struct Dictionary {
    inner: Mutex<DictInner>,
}

/// Both sides of the two-way map share one allocation per interned string:
/// the `Arc<str>` in the vector is a clone of the map key.
#[derive(Debug, Default, Clone)]
struct DictInner {
    ids: HashMap<Arc<str>, Value>,
    strings: Vec<Arc<str>>,
}

impl Clone for Dictionary {
    fn clone(&self) -> Self {
        Dictionary {
            inner: Mutex::new(self.lock().clone()),
        }
    }
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DictInner> {
        // A poisoned lock only means another thread panicked mid-insert; the
        // two-way map itself is always consistent (id is pushed and mapped
        // under one critical section).
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The id of `s`, interning it if it has not been seen before.
    pub fn encode(&self, s: &str) -> Value {
        let mut inner = self.lock();
        if let Some(&id) = inner.ids.get(s) {
            return id;
        }
        let id = inner.strings.len() as Value;
        let interned: Arc<str> = Arc::from(s);
        inner.strings.push(Arc::clone(&interned));
        inner.ids.insert(interned, id);
        id
    }

    /// The id of `s` if it has been interned, without interning it.
    pub fn lookup(&self, s: &str) -> Option<Value> {
        self.lock().ids.get(s).copied()
    }

    /// The string behind `id`, or `None` for an id this dictionary never
    /// issued. Returns an owned copy (the backing store is behind a lock).
    pub fn decode(&self, id: Value) -> Option<String> {
        self.lock().strings.get(id as usize).map(|s| s.to_string())
    }

    /// Number of distinct interned strings (also the next fresh id).
    pub fn len(&self) -> usize {
        self.lock().strings.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.lock().strings.is_empty()
    }
}

/// The type of one relation column: raw ids or dictionary-encoded text.
#[derive(Debug, Clone)]
pub enum ColumnType {
    /// A plain `u64` column (the paper's integer-encoded node identifiers).
    Id,
    /// A text column encoded through the given dictionary.
    Text(Arc<Dictionary>),
}

impl ColumnType {
    /// A text column with its own fresh dictionary.
    pub fn text() -> Self {
        ColumnType::Text(Arc::new(Dictionary::new()))
    }

    /// The column's dictionary, if it is a text column.
    pub fn dictionary(&self) -> Option<&Arc<Dictionary>> {
        match self {
            ColumnType::Id => None,
            ColumnType::Text(d) => Some(d),
        }
    }
}

/// Column-type descriptor of a relation: one [`ColumnType`] per attribute.
///
/// Cloning a schema clones the `Arc`s, not the dictionaries — relations built
/// from clones of one schema encode consistently and can be joined on their
/// text columns.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    columns: Vec<ColumnType>,
}

impl Schema {
    /// A schema from explicit column types.
    pub fn new(columns: Vec<ColumnType>) -> Self {
        Schema { columns }
    }

    /// An all-[`ColumnType::Id`] schema of the given arity (the legacy
    /// integer-keyed layout).
    pub fn ids(arity: usize) -> Self {
        Schema {
            columns: (0..arity).map(|_| ColumnType::Id).collect(),
        }
    }

    /// An all-text schema where **every column has its own** dictionary
    /// (independent namespaces, e.g. star-schema dimensions).
    pub fn text(arity: usize) -> Self {
        Schema {
            columns: (0..arity).map(|_| ColumnType::text()).collect(),
        }
    }

    /// An all-text schema where **every column shares one** dictionary (one
    /// namespace, e.g. both endpoints of a social edge are usernames). This
    /// is the right choice whenever the columns are joined against each
    /// other.
    pub fn text_shared(arity: usize) -> Self {
        let dict = Arc::new(Dictionary::new());
        Schema {
            columns: (0..arity)
                .map(|_| ColumnType::Text(Arc::clone(&dict)))
                .collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The type of column `col`.
    ///
    /// # Panics
    /// Panics if `col >= arity()`.
    pub fn column(&self, col: usize) -> &ColumnType {
        &self.columns[col]
    }

    /// The dictionary of column `col`, if it is a text column.
    ///
    /// # Panics
    /// Panics if `col >= arity()`.
    pub fn dictionary(&self, col: usize) -> Option<&Arc<Dictionary>> {
        self.columns[col].dictionary()
    }

    /// True if column `col` is dictionary-encoded.
    ///
    /// # Panics
    /// Panics if `col >= arity()`.
    pub fn is_text(&self, col: usize) -> bool {
        matches!(self.columns[col], ColumnType::Text(_))
    }

    /// Iterate over the column types in order.
    pub fn iter(&self) -> impl Iterator<Item = &ColumnType> {
        self.columns.iter()
    }
}

/// One input field of a row being pushed through the encoding layer: either
/// an integer or a string. See [`crate::Relation::push_fields`] for the
/// field-type × column-type encoding rules.
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// An integer value: stored verbatim in an [`ColumnType::Id`] column,
    /// treated as an **already-encoded id** in a text column.
    Int(Value),
    /// A string value: interned in a text column, parsed as `u64` in an
    /// [`ColumnType::Id`] column.
    Str(&'a str),
}

impl From<Value> for Field<'_> {
    fn from(v: Value) -> Self {
        Field::Int(v)
    }
}

impl<'a> From<&'a str> for Field<'a> {
    fn from(s: &'a str) -> Self {
        Field::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_dense_and_deduplicated() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        let a = d.encode("alice");
        let b = d.encode("bob");
        assert_eq!((a, b), (0, 1));
        assert_eq!(d.encode("alice"), a, "re-encoding is idempotent");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_round_trips_and_rejects_unknown_ids() {
        let d = Dictionary::new();
        let id = d.encode("carol");
        assert_eq!(d.decode(id).as_deref(), Some("carol"));
        assert_eq!(d.decode(999), None);
        assert_eq!(d.lookup("carol"), Some(id));
        assert_eq!(d.lookup("dave"), None);
    }

    #[test]
    fn ids_are_stable_across_batches() {
        let d = Dictionary::new();
        let first: Vec<Value> = ["u1", "u2", "u3"].iter().map(|s| d.encode(s)).collect();
        // A second, interleaved batch must not disturb the earlier ids.
        for s in ["u4", "u2", "u5", "u1"] {
            d.encode(s);
        }
        for (s, &id) in ["u1", "u2", "u3"].iter().zip(&first) {
            assert_eq!(d.lookup(s), Some(id));
            assert_eq!(d.decode(id).as_deref(), Some(*s));
        }
    }

    #[test]
    fn clone_is_a_deep_snapshot() {
        let d = Dictionary::new();
        d.encode("x");
        let snapshot = d.clone();
        d.encode("y");
        assert_eq!(d.len(), 2);
        assert_eq!(snapshot.len(), 1, "clone does not see later inserts");
    }

    #[test]
    fn shared_schema_shares_dictionaries() {
        let schema = Schema::text_shared(2);
        let d0 = schema.dictionary(0).unwrap();
        let d1 = schema.dictionary(1).unwrap();
        assert!(Arc::ptr_eq(d0, d1), "text_shared: one dictionary");
        let cloned = schema.clone();
        assert!(
            Arc::ptr_eq(d0, cloned.dictionary(0).unwrap()),
            "cloning a schema shares, not copies, the dictionaries"
        );

        let per_column = Schema::text(2);
        assert!(
            !Arc::ptr_eq(
                per_column.dictionary(0).unwrap(),
                per_column.dictionary(1).unwrap()
            ),
            "text: independent dictionaries"
        );
    }

    #[test]
    fn ids_schema_has_no_dictionaries() {
        let schema = Schema::ids(3);
        assert_eq!(schema.arity(), 3);
        for c in 0..3 {
            assert!(!schema.is_text(c));
            assert!(schema.dictionary(c).is_none());
        }
    }
}
