//! Per-column degree statistics.
//!
//! Two uses in the paper: (i) the dataset summaries of Fig. 9 (max/average
//! degree of the graph datasets) and (ii) the heavy/light value partitioning
//! of the simple-cycle decomposition (§5.3.1), which classifies a tuple as
//! *heavy* iff its join-attribute value occurs at least `n^{2/ℓ}` times in
//! that column.

use crate::relation::Relation;
use crate::tuple::Value;
use std::collections::HashMap;

/// Occurrence counts of the values of one column of a relation.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    counts: HashMap<Value, usize>,
    total: usize,
}

impl ColumnStats {
    /// Compute the statistics of `column` of `relation` in one sequential
    /// scan of the backing column.
    pub fn compute(relation: &Relation, column: usize) -> Self {
        let mut counts: HashMap<Value, usize> = HashMap::new();
        for &v in relation.column(column) {
            *counts.entry(v).or_insert(0) += 1;
        }
        ColumnStats {
            total: relation.len(),
            counts,
        }
    }

    /// Number of occurrences of `value` in the column.
    pub fn degree(&self, value: Value) -> usize {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Largest occurrence count.
    pub fn max_degree(&self) -> usize {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Average occurrence count (0.0 for an empty column).
    pub fn avg_degree(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            self.total as f64 / self.counts.len() as f64
        }
    }

    /// Values whose degree is at least `threshold` — the *heavy* values of
    /// §5.3.1 when `threshold = n^{2/ℓ}`.
    pub fn heavy_values(&self, threshold: usize) -> Vec<Value> {
        let mut v: Vec<Value> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= threshold)
            .map(|(&val, _)| val)
            .collect();
        v.sort_unstable();
        v
    }

    /// Whether `value` is heavy for the given threshold.
    pub fn is_heavy(&self, value: Value, threshold: usize) -> bool {
        self.degree(value) >= threshold
    }
}

/// The heavy/light threshold `n^{2/ℓ}` of the ℓ-cycle decomposition (§5.3.1),
/// computed from the maximum relation cardinality `n`.
pub fn heavy_threshold(n: usize, ell: usize) -> usize {
    if n == 0 {
        return 1;
    }
    let t = (n as f64).powf(2.0 / ell as f64);
    // At least 1 so that a degree-0 value is never "heavy".
    t.ceil().max(1.0) as usize
}

/// Summary statistics of a binary edge relation, as reported in Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of distinct node identifiers (union of both endpoints).
    pub nodes: usize,
    /// Number of edges (tuples).
    pub edges: usize,
    /// Maximum out-degree (occurrences of a value in the source column).
    pub max_degree: usize,
    /// Average out-degree.
    pub avg_degree: f64,
}

/// Compute [`GraphStats`] for a binary edge relation.
///
/// # Panics
/// Panics if the relation is not binary.
pub fn graph_stats(relation: &Relation) -> GraphStats {
    assert_eq!(
        relation.arity(),
        2,
        "graph_stats requires a binary relation"
    );
    let mut nodes: HashMap<Value, ()> = HashMap::new();
    for &v in relation.column(0).iter().chain(relation.column(1)) {
        nodes.insert(v, ());
    }
    let out = ColumnStats::compute(relation, 0);
    GraphStats {
        nodes: nodes.len(),
        edges: relation.len(),
        max_degree: out.max_degree(),
        avg_degree: if nodes.is_empty() {
            0.0
        } else {
            relation.len() as f64 / out.distinct() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn skewed() -> Relation {
        let mut r = Relation::new("E", 2);
        for i in 0..6 {
            r.push(Tuple::new(vec![0, i], 0.0)); // hub node 0
        }
        r.push(Tuple::new(vec![1, 2], 0.0));
        r.push(Tuple::new(vec![2, 3], 0.0));
        r
    }

    #[test]
    fn degrees_and_heavy_values() {
        let r = skewed();
        let s = ColumnStats::compute(&r, 0);
        assert_eq!(s.degree(0), 6);
        assert_eq!(s.degree(1), 1);
        assert_eq!(s.degree(42), 0);
        assert_eq!(s.distinct(), 3);
        assert_eq!(s.max_degree(), 6);
        assert_eq!(s.heavy_values(3), vec![0]);
        assert!(s.is_heavy(0, 3));
        assert!(!s.is_heavy(1, 3));
    }

    #[test]
    fn heavy_threshold_matches_paper_examples() {
        // 6-cycle: threshold n^{2/6} = n^{1/3}; the paper's example uses n=1000 → 10.
        assert_eq!(heavy_threshold(1000, 6), 10);
        // 4-cycle: n^{1/2}.
        assert_eq!(heavy_threshold(10_000, 4), 100);
        assert_eq!(heavy_threshold(0, 4), 1);
    }

    #[test]
    fn graph_statistics() {
        let r = skewed();
        let g = graph_stats(&r);
        assert_eq!(g.edges, 8);
        assert_eq!(g.nodes, 6); // node ids 0..=5 appear as sources or targets
        assert_eq!(g.max_degree, 6);
        assert!(g.avg_degree > 1.0);
    }
}
