//! Relations: named collections of equal-arity weighted tuples.

use crate::tuple::{Tuple, TupleId, Value};

/// A named relation with a fixed arity. Tuples are stored in insertion order
/// and addressed by their [`TupleId`] (their index), which the engine uses as
/// the payload carried through T-DP states.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    arity: usize,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Create an empty relation with the given name and arity.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Relation {
            name: name.into(),
            arity,
            tuples: Vec::new(),
        }
    }

    /// Create a relation directly from a list of tuples.
    ///
    /// # Panics
    /// Panics if any tuple's arity differs from `arity`.
    pub fn from_tuples(name: impl Into<String>, arity: usize, tuples: Vec<Tuple>) -> Self {
        let mut r = Relation::new(name, arity);
        for t in tuples {
            r.push(t);
        }
        r
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's arity (number of attributes).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a tuple.
    ///
    /// # Panics
    /// Panics if the tuple's arity does not match the relation's.
    pub fn push(&mut self, tuple: Tuple) -> TupleId {
        assert_eq!(
            tuple.arity(),
            self.arity,
            "tuple arity {} does not match relation {} arity {}",
            tuple.arity(),
            self.name,
            self.arity
        );
        self.tuples.push(tuple);
        self.tuples.len() - 1
    }

    /// Convenience: append a binary edge tuple `(from, to)` with a weight.
    ///
    /// # Panics
    /// Panics unless the relation is binary.
    pub fn push_edge(&mut self, from: Value, to: Value, weight: f64) -> TupleId {
        assert_eq!(self.arity, 2, "push_edge requires a binary relation");
        self.push(Tuple::new(vec![from, to], weight))
    }

    /// The tuple with the given id.
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id]
    }

    /// Iterate over `(id, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples.iter().enumerate()
    }

    /// Iterate over tuples only.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// A copy of this relation containing only tuples satisfying `pred`,
    /// under a new name. Used for the heavy/light partitioning of §5.3.1.
    pub fn filter(
        &self,
        name: impl Into<String>,
        mut pred: impl FnMut(&Tuple) -> bool,
    ) -> Relation {
        Relation {
            name: name.into(),
            arity: self.arity,
            tuples: self.tuples.iter().filter(|t| pred(t)).cloned().collect(),
        }
    }

    /// Total weight of all tuples (handy for sanity checks in tests).
    pub fn total_weight(&self) -> f64 {
        self.tuples.iter().map(Tuple::weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut r = Relation::new("R", 2);
        let id = r.push(Tuple::new(vec![1, 2], 0.5));
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuple(id).values(), &[1, 2]);
        assert!(!r.is_empty());
        assert_eq!(r.name(), "R");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new("R", 2);
        r.push(Tuple::new(vec![1, 2, 3], 0.0));
    }

    #[test]
    fn filter_creates_partition() {
        let mut r = Relation::new("R", 2);
        for i in 0..10 {
            r.push_edge(i, i + 1, i as f64);
        }
        let heavy = r.filter("R_heavy", |t| t.value(0) >= 5);
        assert_eq!(heavy.len(), 5);
        assert_eq!(heavy.name(), "R_heavy");
        assert_eq!(r.len(), 10, "original is untouched");
    }

    #[test]
    fn edge_helper_requires_binary() {
        let mut r = Relation::new("E", 2);
        r.push_edge(1, 2, 3.0);
        assert_eq!(r.total_weight(), 3.0);
    }
}
