//! Relations: named collections of equal-arity weighted tuples.
//!
//! ## Column-major storage
//!
//! A relation stores its tuples **columnar**: one flat `Vec<Value>` per
//! attribute plus one flat `Vec<f64>` weight column. The preprocessing phase
//! of the engine — index construction, the value-node loop of the equi-join
//! compilation, semi-join filters, degree statistics — reads whole columns,
//! so the column-major layout turns every one of those loops into a
//! sequential scan over contiguous memory instead of a pointer chase through
//! one heap allocation per row.
//!
//! Rows are addressed by their [`TupleId`] (insertion index) through the
//! borrowed view [`RowRef`], which is two words (relation pointer + row id)
//! and resolves each attribute access as a single column indexing operation.
//! The owned row type [`Tuple`] remains the construction/value currency:
//! [`Relation::push`] decomposes a `Tuple` into the columns, and
//! [`Relation::push_row`] appends straight from a borrowed slice without
//! allocating.
//!
//! ## String dictionaries
//!
//! Every relation carries a [`Schema`] describing each column as either raw
//! `u64` ids ([`ColumnType::Id`], the default) or dictionary-encoded text
//! ([`ColumnType::Text`]). Text columns store dense ids in the very same flat
//! `Vec<Value>` as integer columns — the engine, the indexes, and the any-k
//! core never see a string. Encoding happens at the storage boundary on push
//! ([`Relation::push_fields`], [`Relation::push_text_edge`]) and decoding on
//! read ([`RowRef::decoded`], [`RowRef::display_value`]); see
//! [`crate::dictionary`] for the sharing rules that keep joined text columns
//! encoding through one dictionary.

use crate::dictionary::{ColumnType, Field, Schema};
use crate::tuple::{Tuple, TupleId, Value};

/// A named relation with a fixed arity, stored column-major. Tuples are kept
/// in insertion order and addressed by their [`TupleId`] (their index), which
/// the engine uses as the payload carried through T-DP states.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    arity: usize,
    /// Per-column type descriptor (raw ids vs dictionary-encoded text).
    schema: Schema,
    /// One flat value vector per attribute; `columns[c][t]` is attribute `c`
    /// of tuple `t`. All columns have the same length.
    columns: Vec<Vec<Value>>,
    /// The weight column, same length as every attribute column.
    weights: Vec<f64>,
}

/// A borrowed, copyable view of one row of a [`Relation`].
///
/// Attribute access is a single indexing operation into the backing column;
/// no row is ever materialised. `RowRef` is the type handed out by
/// [`Relation::iter`], [`Relation::tuples`] and [`Relation::tuple`], and the
/// type accepted by the engine's weight functions and filters.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    rel: &'a Relation,
    id: TupleId,
}

impl<'a> RowRef<'a> {
    /// The row's [`TupleId`] within its relation.
    pub fn id(self) -> TupleId {
        self.id
    }

    /// The number of attributes.
    pub fn arity(self) -> usize {
        self.rel.arity
    }

    /// The value of attribute `col`.
    ///
    /// # Panics
    /// Panics if `col >= arity()`.
    #[inline]
    pub fn value(self, col: usize) -> Value {
        self.rel.columns[col][self.id]
    }

    /// The row's weight.
    #[inline]
    pub fn weight(self) -> f64 {
        self.rel.weights[self.id]
    }

    /// Iterate over the row's attribute values in column order.
    pub fn values(self) -> impl Iterator<Item = Value> + 'a {
        let id = self.id;
        self.rel.columns.iter().map(move |c| c[id])
    }

    /// The attribute values gathered into an owned vector.
    pub fn values_vec(self) -> Vec<Value> {
        self.values().collect()
    }

    /// An owned [`Tuple`] copy of the row.
    pub fn to_tuple(self) -> Tuple {
        Tuple::new(self.values_vec(), self.weight())
    }

    /// Decode attribute `col` through its column dictionary: the original
    /// string for a text column, `None` for a raw-id column (or for an id the
    /// dictionary never issued, which indicates corrupted data).
    ///
    /// # Panics
    /// Panics if `col >= arity()`.
    pub fn decoded(self, col: usize) -> Option<String> {
        self.rel
            .schema
            .dictionary(col)
            .and_then(|d| d.decode(self.value(col)))
    }

    /// Attribute `col` rendered for display: the decoded string for a text
    /// column, the numeric value otherwise.
    ///
    /// # Panics
    /// Panics if `col >= arity()`.
    pub fn display_value(self, col: usize) -> String {
        self.decoded(col)
            .unwrap_or_else(|| self.value(col).to_string())
    }
}

impl std::fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowRef")
            .field("id", &self.id)
            .field("values", &self.values_vec())
            .field("weight", &self.weight())
            .finish()
    }
}

impl Relation {
    /// Create an empty relation with the given name and arity, with the
    /// all-[`ColumnType::Id`] schema (plain `u64` columns).
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Relation::with_schema(name, Schema::ids(arity))
    }

    /// Create an empty relation with an explicit [`Schema`] (arity is the
    /// schema's arity). Text columns encode through the schema's
    /// dictionaries; build several relations from clones of one schema to
    /// keep their encodings join-compatible.
    pub fn with_schema(name: impl Into<String>, schema: Schema) -> Self {
        Relation::with_schema_capacity(name, schema, 0)
    }

    /// Like [`Relation::with_schema`], with row capacity pre-reserved in
    /// every column.
    pub fn with_schema_capacity(name: impl Into<String>, schema: Schema, rows: usize) -> Self {
        let arity = schema.arity();
        Relation {
            name: name.into(),
            arity,
            schema,
            columns: vec![Vec::with_capacity(rows); arity],
            weights: Vec::with_capacity(rows),
        }
    }

    /// Create an empty relation with row capacity pre-reserved in every
    /// column (avoids re-allocation when the cardinality is known up front).
    pub fn with_capacity(name: impl Into<String>, arity: usize, rows: usize) -> Self {
        Relation::with_schema_capacity(name, Schema::ids(arity), rows)
    }

    /// Create a relation directly from a list of tuples.
    ///
    /// # Panics
    /// Panics if any tuple's arity differs from `arity`.
    pub fn from_tuples(name: impl Into<String>, arity: usize, tuples: Vec<Tuple>) -> Self {
        let mut r = Relation::with_capacity(name, arity, tuples.len());
        for t in tuples {
            r.push(t);
        }
        r
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's arity (number of attributes).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The relation's column-type descriptor.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The dictionary of column `col`, if it is a text column.
    ///
    /// # Panics
    /// Panics if `col >= arity()`.
    pub fn dictionary(&self, col: usize) -> Option<&std::sync::Arc<crate::Dictionary>> {
        self.schema.dictionary(col)
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The full column of attribute `col` — the contiguous scan path used by
    /// index construction and degree statistics.
    ///
    /// # Panics
    /// Panics if `col >= arity()`.
    #[inline]
    pub fn column(&self, col: usize) -> &[Value] {
        &self.columns[col]
    }

    /// The full weight column.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Append a row from a borrowed value slice (allocation-free).
    ///
    /// This is the raw-id path: values land in the columns verbatim. For a
    /// text column the caller must supply ids previously issued by that
    /// column's dictionary (e.g. when replicating an already-encoded
    /// relation); use [`Relation::push_fields`] to encode strings on push.
    ///
    /// # Panics
    /// Panics if `values.len()` does not match the relation's arity.
    pub fn push_row(&mut self, values: &[Value], weight: f64) -> TupleId {
        assert_eq!(
            values.len(),
            self.arity,
            "tuple arity {} does not match relation {} arity {}",
            values.len(),
            self.name,
            self.arity
        );
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
        self.weights.push(weight);
        self.weights.len() - 1
    }

    /// Append a tuple.
    ///
    /// # Panics
    /// Panics if the tuple's arity does not match the relation's.
    pub fn push(&mut self, tuple: Tuple) -> TupleId {
        self.push_row(tuple.values(), tuple.weight())
    }

    /// Convenience: append a binary edge tuple `(from, to)` with a weight.
    ///
    /// # Panics
    /// Panics unless the relation is binary.
    pub fn push_edge(&mut self, from: Value, to: Value, weight: f64) -> TupleId {
        assert_eq!(self.arity, 2, "push_edge requires a binary relation");
        self.push_row(&[from, to], weight)
    }

    /// Append a row of mixed string/integer [`Field`]s, encoding through the
    /// schema. Per field × column type:
    ///
    /// * [`Field::Int`] in an [`ColumnType::Id`] column — stored verbatim;
    /// * [`Field::Str`] in a [`ColumnType::Text`] column — interned in the
    ///   column's dictionary, its dense id stored;
    /// * [`Field::Int`] in a text column — treated as an already-encoded id
    ///   and stored verbatim (the replication path);
    /// * [`Field::Str`] in an id column — parsed as `u64` (the loader path).
    ///
    /// # Panics
    /// Panics on an arity mismatch, or if a string field in an id column is
    /// not a valid `u64`.
    pub fn push_fields(&mut self, fields: &[Field<'_>], weight: f64) -> TupleId {
        assert_eq!(
            fields.len(),
            self.arity,
            "row arity {} does not match relation {} arity {}",
            fields.len(),
            self.name,
            self.arity
        );
        // Resolve every field before touching any column, so a parse panic
        // cannot leave the columns ragged (all columns must stay the same
        // length even if the caller recovers from the panic).
        let values: Vec<Value> = fields
            .iter()
            .enumerate()
            .map(|(col, field)| match (self.schema.column(col), field) {
                (_, Field::Int(v)) => *v,
                (ColumnType::Text(dict), Field::Str(s)) => dict.encode(s),
                (ColumnType::Id, Field::Str(s)) => s.parse().unwrap_or_else(|_| {
                    panic!(
                        "column {col} of relation {} holds raw ids but got \
                         non-numeric string {s:?}",
                        self.name
                    )
                }),
            })
            .collect();
        self.push_row(&values, weight)
    }

    /// Convenience: append a string-keyed edge `(from, to)` with a weight,
    /// encoding both endpoints through the schema.
    ///
    /// # Panics
    /// Panics unless the relation is binary (see [`Relation::push_fields`]
    /// for the per-column encoding rules).
    pub fn push_text_edge(&mut self, from: &str, to: &str, weight: f64) -> TupleId {
        assert_eq!(self.arity, 2, "push_text_edge requires a binary relation");
        self.push_fields(&[Field::Str(from), Field::Str(to)], weight)
    }

    /// A borrowed view of the tuple with the given id.
    ///
    /// # Panics
    /// Panics if `id >= len()` (on first attribute/weight access for
    /// zero-arity relations).
    #[inline]
    pub fn tuple(&self, id: TupleId) -> RowRef<'_> {
        debug_assert!(id < self.len(), "tuple id {id} out of range");
        RowRef { rel: self, id }
    }

    /// Iterate over `(id, row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, RowRef<'_>)> {
        (0..self.len()).map(move |id| (id, RowRef { rel: self, id }))
    }

    /// Iterate over rows only.
    pub fn tuples(&self) -> impl Iterator<Item = RowRef<'_>> {
        (0..self.len()).map(move |id| RowRef { rel: self, id })
    }

    /// A copy of this relation containing only rows satisfying `pred`,
    /// under a new name. Used for the heavy/light partitioning of §5.3.1.
    /// The schema (and thus any column dictionaries) is shared with the
    /// original, so the partition stays decode- and join-compatible.
    pub fn filter(
        &self,
        name: impl Into<String>,
        mut pred: impl FnMut(RowRef<'_>) -> bool,
    ) -> Relation {
        let mut out = Relation::with_schema(name, self.schema.clone());
        for id in 0..self.len() {
            if pred(RowRef { rel: self, id }) {
                for (dst, src) in out.columns.iter_mut().zip(&self.columns) {
                    dst.push(src[id]);
                }
                out.weights.push(self.weights[id]);
            }
        }
        out
    }

    /// A copy of this relation with the tuples in `deletes` removed and
    /// `inserts` appended, under the same name. Survivors keep their
    /// relative order, so a surviving tuple's new id is its old id minus
    /// the number of deleted ids below it; inserts take the ids past the
    /// survivors. The schema (and thus any column dictionaries) is shared
    /// with the original.
    ///
    /// `deletes` must be sorted ascending, deduplicated, and in bounds
    /// (callers go through [`Database::apply_delta`](crate::Database::apply_delta),
    /// which validates; see [`crate::delta::RelationDelta::sorted_deletes`]).
    ///
    /// # Panics
    /// Panics if an inserted tuple's arity does not match the relation's.
    pub fn apply_delta(&self, deletes: &[TupleId], inserts: &[Tuple]) -> Relation {
        debug_assert!(deletes.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(deletes.last().is_none_or(|&d| d < self.len()));
        let survivors = self.len() - deletes.len();
        let mut out = Relation::with_schema_capacity(
            self.name.clone(),
            self.schema.clone(),
            survivors + inserts.len(),
        );
        let mut next_delete = deletes.iter().peekable();
        for id in 0..self.len() {
            if next_delete.peek() == Some(&&id) {
                next_delete.next();
                continue;
            }
            for (dst, src) in out.columns.iter_mut().zip(&self.columns) {
                dst.push(src[id]);
            }
            out.weights.push(self.weights[id]);
        }
        for tuple in inserts {
            out.push(tuple.clone());
        }
        out
    }

    /// Total weight of all tuples (handy for sanity checks in tests).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut r = Relation::new("R", 2);
        let id = r.push(Tuple::new(vec![1, 2], 0.5));
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuple(id).values_vec(), vec![1, 2]);
        assert_eq!(r.tuple(id).value(1), 2);
        assert_eq!(r.tuple(id).weight(), 0.5);
        assert!(!r.is_empty());
        assert_eq!(r.name(), "R");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new("R", 2);
        r.push(Tuple::new(vec![1, 2, 3], 0.0));
    }

    #[test]
    fn filter_creates_partition() {
        let mut r = Relation::new("R", 2);
        for i in 0..10 {
            r.push_edge(i, i + 1, i as f64);
        }
        let heavy = r.filter("R_heavy", |t| t.value(0) >= 5);
        assert_eq!(heavy.len(), 5);
        assert_eq!(heavy.name(), "R_heavy");
        assert_eq!(r.len(), 10, "original is untouched");
    }

    #[test]
    fn edge_helper_requires_binary() {
        let mut r = Relation::new("E", 2);
        r.push_edge(1, 2, 3.0);
        assert_eq!(r.total_weight(), 3.0);
    }

    #[test]
    fn columns_are_contiguous_per_attribute() {
        let mut r = Relation::new("R", 3);
        r.push_row(&[1, 10, 100], 0.1);
        r.push_row(&[2, 20, 200], 0.2);
        r.push_row(&[3, 30, 300], 0.3);
        assert_eq!(r.column(0), &[1, 2, 3]);
        assert_eq!(r.column(1), &[10, 20, 30]);
        assert_eq!(r.column(2), &[100, 200, 300]);
        assert_eq!(r.weights(), &[0.1, 0.2, 0.3]);
    }

    #[test]
    fn text_columns_encode_on_push_and_decode_on_read() {
        let mut r = Relation::with_schema("FOLLOWS", Schema::text_shared(2));
        r.push_text_edge("alice", "bob", 1.0);
        r.push_text_edge("bob", "alice", 2.0);
        r.push_text_edge("alice", "carol", 3.0);
        // The columns hold dense ids: "alice"=0, "bob"=1, "carol"=2 (shared
        // dictionary, first-encounter order across both columns).
        assert_eq!(r.column(0), &[0, 1, 0]);
        assert_eq!(r.column(1), &[1, 0, 2]);
        assert_eq!(r.tuple(0).decoded(0).as_deref(), Some("alice"));
        assert_eq!(r.tuple(2).decoded(1).as_deref(), Some("carol"));
        assert_eq!(r.tuple(1).display_value(0), "bob");
        assert_eq!(r.dictionary(0).unwrap().len(), 3);
    }

    #[test]
    fn mixed_schema_encodes_per_column() {
        let schema = Schema::new(vec![ColumnType::text(), ColumnType::Id]);
        let mut r = Relation::with_schema("VISITS", schema);
        r.push_fields(&[Field::Str("alice"), Field::Int(42)], 1.0);
        // Loader path: a numeric string in an id column is parsed.
        r.push_fields(&[Field::Str("bob"), Field::Str("7")], 2.0);
        assert_eq!(r.column(0), &[0, 1]);
        assert_eq!(r.column(1), &[42, 7]);
        assert_eq!(r.tuple(0).decoded(0).as_deref(), Some("alice"));
        assert_eq!(r.tuple(0).decoded(1), None, "id column has no dictionary");
        assert_eq!(r.tuple(1).display_value(1), "7");
    }

    #[test]
    #[should_panic(expected = "non-numeric")]
    fn non_numeric_string_in_id_column_panics() {
        let mut r = Relation::new("R", 1);
        r.push_fields(&[Field::Str("alice")], 0.0);
    }

    #[test]
    fn failed_push_fields_leaves_columns_aligned() {
        let mut r = Relation::new("R", 2);
        r.push_edge(1, 2, 0.5);
        // Column 0's field is resolvable, column 1's panics: the row must be
        // rejected atomically, never half-pushed.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.push_fields(&[Field::Int(7), Field::Str("alice")], 0.0);
        }));
        assert!(outcome.is_err());
        assert_eq!(r.len(), 1);
        assert_eq!(r.column(0), &[1]);
        assert_eq!(r.column(1), &[2]);
    }

    #[test]
    fn filter_shares_the_dictionary() {
        let mut r = Relation::with_schema("F", Schema::text_shared(2));
        r.push_text_edge("alice", "bob", 1.0);
        r.push_text_edge("bob", "carol", 5.0);
        let heavy = r.filter("F_heavy", |t| t.weight() > 2.0);
        assert_eq!(heavy.len(), 1);
        assert_eq!(heavy.tuple(0).decoded(0).as_deref(), Some("bob"));
        assert!(std::sync::Arc::ptr_eq(
            r.dictionary(0).unwrap(),
            heavy.dictionary(0).unwrap()
        ));
    }

    #[test]
    fn row_ref_round_trips_through_tuple() {
        let mut r = Relation::new("R", 2);
        r.push_row(&[7, 9], 1.5);
        let t = r.tuple(0).to_tuple();
        assert_eq!(t.values(), &[7, 9]);
        assert_eq!(t.weight(), 1.5);
        assert_eq!(r.tuple(0).values().collect::<Vec<_>>(), vec![7, 9]);
    }
}
