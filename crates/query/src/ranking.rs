//! Ranking functions for query answers.
//!
//! The core algorithms are generic over any selective dioid (§2.2, §6.4); the
//! query-level API exposes the rankings used in the paper's evaluation and
//! examples with plain `f64` weights. Descending (max-plus) ranking is
//! realised by compiling with negated weights over the tropical min-plus
//! dioid — the two dioids are isomorphic under negation — so a single
//! instance type serves both directions. Advanced users can call the
//! engine's `compile_with` directly with any dioid.
//!
//! The type lives in `anyk-query` (not the engine) because a ranking is part
//! of a request's *description*: [`crate::QuerySpec`] carries it, the text
//! language spells it (`rank by sum desc`), and services key plan caches by
//! it. The engine re-exports it, so `anyk_engine::RankingFunction` keeps
//! working.

/// How query answers are ranked.
///
/// `Hash` so that services can key prepared-plan caches by
/// (query, ranking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RankingFunction {
    /// Ascending by the sum of the witness tuples' weights (the paper's
    /// default, tropical min-plus dioid).
    #[default]
    SumAscending,
    /// Descending by the sum of the witness tuples' weights ("heaviest
    /// first", max-plus dioid).
    SumDescending,
    /// Ascending by the *maximum* tuple weight in the witness (min-max
    /// bottleneck ranking; also a selective dioid).
    BottleneckAscending,
}

impl RankingFunction {
    /// Transform an input tuple weight into the internal (min-plus) weight.
    /// Engine-facing; inverse of [`RankingFunction::decode`].
    pub fn encode(self, w: f64) -> f64 {
        match self {
            RankingFunction::SumAscending | RankingFunction::BottleneckAscending => w,
            RankingFunction::SumDescending => -w,
        }
    }

    /// Transform an internal solution weight back into a user-facing weight.
    /// Engine-facing; inverse of [`RankingFunction::encode`].
    pub fn decode(self, w: f64) -> f64 {
        match self {
            RankingFunction::SumAscending | RankingFunction::BottleneckAscending => w,
            RankingFunction::SumDescending => -w,
        }
    }

    /// Whether this ranking aggregates with `max` instead of `+`.
    pub fn is_bottleneck(self) -> bool {
        matches!(self, RankingFunction::BottleneckAscending)
    }

    /// The aggregation used when pre-combining weights outside the dioid
    /// machinery (bag materialisation in the cycle decomposition, baseline
    /// joins): `+` for the sum rankings, `max` for the bottleneck ranking.
    pub fn combine_fn(self) -> fn(f64, f64) -> f64 {
        if self.is_bottleneck() {
            f64::max
        } else {
            |a, b| a + b
        }
    }

    /// The ranking's clause in the textual query language (canonical,
    /// lowercase spelling), or `None` for the default ranking, whose clause
    /// the canonical printer omits.
    pub fn spec_clause(self) -> Option<&'static str> {
        match self {
            RankingFunction::SumAscending => None,
            RankingFunction::SumDescending => Some("sum desc"),
            RankingFunction::BottleneckAscending => Some("bottleneck"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descending_round_trips_through_negation() {
        let r = RankingFunction::SumDescending;
        assert_eq!(r.decode(r.encode(3.5)), 3.5);
        assert_eq!(r.encode(2.0), -2.0);
    }

    #[test]
    fn ascending_is_identity() {
        let r = RankingFunction::SumAscending;
        assert_eq!(r.encode(7.0), 7.0);
        assert_eq!(r.decode(7.0), 7.0);
        assert!(!r.is_bottleneck());
        assert!(RankingFunction::BottleneckAscending.is_bottleneck());
    }

    #[test]
    fn spec_clauses_match_the_grammar() {
        assert_eq!(RankingFunction::SumAscending.spec_clause(), None);
        assert_eq!(
            RankingFunction::SumDescending.spec_clause(),
            Some("sum desc")
        );
        assert_eq!(
            RankingFunction::BottleneckAscending.spec_clause(),
            Some("bottleneck")
        );
    }
}
