//! Convenience constructors for the query shapes used in the paper's
//! evaluation (§7, Appendix B) and a small fluent builder for custom queries.

use crate::atom::Atom;
use crate::cq::ConjunctiveQuery;

/// Fluent builder for conjunctive queries.
///
/// ```
/// use anyk_query::QueryBuilder;
/// // A custom 2-atom query Q(x,y,z) :- R(x,y), S(y,z)
/// let q = QueryBuilder::new()
///     .atom("R", &["x", "y"])
///     .atom("S", &["y", "z"])
///     .build();
/// assert!(q.is_acyclic());
/// // The 4-path query of Example 1 / Appendix B.
/// let p4 = QueryBuilder::path(4).build();
/// assert_eq!(p4.num_atoms(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    atoms: Vec<Atom>,
    free: Option<Vec<String>>,
}

impl QueryBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        QueryBuilder::default()
    }

    /// Add an atom over relation `relation` with the given variables.
    pub fn atom(mut self, relation: &str, variables: &[&str]) -> Self {
        self.atoms.push(Atom::new(relation, variables));
        self
    }

    /// Project the query onto the given head variables (making it non-full).
    pub fn project(mut self, variables: &[&str]) -> Self {
        self.free = Some(variables.iter().map(|v| v.to_string()).collect());
        self
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if no atom was added, or if a projected variable is unknown.
    pub fn build(self) -> ConjunctiveQuery {
        match self.free {
            None => ConjunctiveQuery::full(self.atoms),
            Some(f) => ConjunctiveQuery::with_projection(self.atoms, f),
        }
    }

    /// The ℓ-path query `QPℓ(x) :- R1(x1,x2), R2(x2,x3), …, Rℓ(xℓ,xℓ₊₁)`
    /// (Example 2). Relation names are `R1..Rℓ`.
    pub fn path(ell: usize) -> Self {
        assert!(ell >= 1);
        let mut b = QueryBuilder::new();
        for i in 1..=ell {
            let rel = format!("R{i}");
            let v1 = format!("x{i}");
            let v2 = format!("x{}", i + 1);
            b.atoms.push(Atom::new(rel, &[v1.as_str(), v2.as_str()]));
        }
        b
    }

    /// The ℓ-star query: all relations join on their first attribute
    /// (`R1.A1 = R2.A1 = … = Rℓ.A1`, Appendix B). Relation names are `R1..Rℓ`.
    pub fn star(ell: usize) -> Self {
        assert!(ell >= 1);
        let mut b = QueryBuilder::new();
        for i in 1..=ell {
            let rel = format!("R{i}");
            let leaf = format!("y{i}");
            b.atoms.push(Atom::new(rel, &["x0", leaf.as_str()]));
        }
        b
    }

    /// The ℓ-cycle query `QCℓ(x) :- R1(x1,x2), …, Rℓ(xℓ,x1)` (Example 2).
    /// Relation names are `R1..Rℓ`.
    pub fn cycle(ell: usize) -> Self {
        assert!(ell >= 3, "a cycle needs at least 3 atoms");
        let mut b = QueryBuilder::new();
        for i in 1..=ell {
            let rel = format!("R{i}");
            let v1 = format!("x{i}");
            let v2 = if i == ell {
                "x1".to_string()
            } else {
                format!("x{}", i + 1)
            };
            b.atoms.push(Atom::new(rel, &[v1.as_str(), v2.as_str()]));
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let q = QueryBuilder::path(4).build();
        assert_eq!(q.num_atoms(), 4);
        assert_eq!(q.atoms()[0].to_string(), "R1(x1, x2)");
        assert_eq!(q.atoms()[3].to_string(), "R4(x4, x5)");
        assert!(q.is_acyclic());
    }

    #[test]
    fn star_shape() {
        let q = QueryBuilder::star(3).build();
        assert_eq!(q.num_atoms(), 3);
        for a in q.atoms() {
            assert_eq!(a.variables[0], "x0");
        }
        assert!(q.is_acyclic());
    }

    #[test]
    fn cycle_shape() {
        let q = QueryBuilder::cycle(6).build();
        assert_eq!(q.num_atoms(), 6);
        assert_eq!(q.atoms()[5].to_string(), "R6(x6, x1)");
        assert!(!q.is_acyclic());
    }

    #[test]
    fn custom_builder_with_projection() {
        let q = QueryBuilder::new()
            .atom("R", &["x", "y"])
            .atom("S", &["y", "z"])
            .project(&["x", "y"])
            .build();
        assert!(!q.is_full());
        assert_eq!(q.head_variables(), vec!["x", "y"]);
    }

    #[test]
    #[should_panic]
    fn cycle_shorter_than_three_panics() {
        let _ = QueryBuilder::cycle(2);
    }
}
