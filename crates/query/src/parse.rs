//! Hand-rolled recursive-descent parser for the textual query language.
//!
//! One line of text describes one complete any-k request:
//!
//! ```text
//! Q(x, z) :- R(x, y), S(y, z), y = 7 rank by sum limit 1000
//! ```
//!
//! # Grammar
//!
//! ```text
//! query     := head ":-" body { clause }
//! head      := ident "(" [ var { "," var } ] ")"
//! body      := item { "," item }
//! item      := atom | predicate
//! atom      := ident "(" term { "," term } ")"
//! term      := var | constant
//! predicate := var "=" constant | constant "=" var
//! constant  := nat | string
//! clause    := "rank" "by" ranking | "via" algorithm | "limit" nat
//!            | "shards" nat
//! ranking   := "sum" [ "asc" | "desc" ] | "bottleneck" [ "asc" ]
//! algorithm := "eager" | "lazy" | "all" | "take2" | "recursive" | "batch"
//! var       := ident
//! ident     := [A-Za-z_] [A-Za-z0-9_]*
//! nat       := [0-9]+
//! string    := '"' { char | '\"' | '\\' } '"'
//! ```
//!
//! Notes:
//!
//! * The head name (`Q`) is arbitrary and not retained; the canonical
//!   printer always writes `Q`.
//! * Whitespace separates tokens and is otherwise ignored. Keywords
//!   (`rank`, `by`, `via`, `limit`, ranking and algorithm names) are
//!   contextual: a relation or variable may reuse them.
//! * A constant **inside an atom** (`R(x, 7)`, `Follows(u, "alice")`) is
//!   sugar for a fresh variable plus an equality predicate; the parser
//!   desugars it, so `R(x, 7)` and `R(x, y), y = 7` produce the same
//!   canonical form and share a plan-cache entry.
//! * Trailing clauses may appear in any order, each at most once; the
//!   canonical printer emits `rank by … via … limit …` and omits defaults
//!   (`rank by sum`, no algorithm pin, no limit).
//! * Every failure is a typed [`ParseError`] carrying the byte offset of
//!   the offending token — arbitrary input never panics.

use crate::atom::Atom;
use crate::error::QueryError;
use crate::ranking::RankingFunction;
use crate::spec::{algorithm_from_token, Constant, Predicate, QuerySpec};
use std::fmt;

/// A syntax or validation failure while parsing query text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<QueryError> for ParseError {
    fn from(e: QueryError) -> Self {
        ParseError::new(0, e.to_string())
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Eq,
    Turnstile,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Str(s) => format!("string {s:?}"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Turnstile => "`:-`".into(),
        }
    }
}

fn lex(text: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, i));
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    toks.push((Tok::Turnstile, i));
                    i += 2;
                } else {
                    return Err(ParseError::new(i, "expected `:-`"));
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ParseError::new(start, "unterminated string literal"));
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => match bytes.get(i + 1) {
                            Some(b'"') => {
                                s.push('"');
                                i += 2;
                            }
                            Some(b'\\') => {
                                s.push('\\');
                                i += 2;
                            }
                            _ => {
                                return Err(ParseError::new(
                                    i,
                                    "unknown escape in string literal (only \\\" and \\\\)",
                                ));
                            }
                        },
                        Some(_) => {
                            // Consume one full UTF-8 scalar, not one byte.
                            let rest = &text[i..];
                            let ch = rest.chars().next().expect("non-empty remainder");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                toks.push((Tok::Str(s), start));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let lit = &text[start..i];
                let v: u64 = lit.parse().map_err(|_| {
                    ParseError::new(start, format!("integer literal `{lit}` is out of range"))
                })?;
                toks.push((Tok::Int(v), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Ident(text[start..i].to_string()), start));
            }
            other => {
                return Err(ParseError::new(
                    i,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: &'a [(Tok, usize)],
    pos: usize,
    end: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map_or(self.end, |&(_, o)| o)
    }

    fn next(&mut self, expected: &str) -> Result<&'a Tok, ParseError> {
        match self.toks.get(self.pos) {
            Some((t, _)) => {
                self.pos += 1;
                Ok(t)
            }
            None => Err(ParseError::new(
                self.end,
                format!("expected {expected}, found end of input"),
            )),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        let offset = self.offset();
        let got = self.next(&tok.describe())?;
        if *got == tok {
            Ok(())
        } else {
            Err(ParseError::new(
                offset,
                format!("expected {}, found {}", tok.describe(), got.describe()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        let offset = self.offset();
        match self.next(what)? {
            Tok::Ident(s) => Ok(s.clone()),
            other => Err(ParseError::new(
                offset,
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn constant(&mut self) -> Result<Constant, ParseError> {
        let offset = self.offset();
        match self.next("a constant")? {
            Tok::Int(v) => Ok(Constant::Int(*v)),
            Tok::Str(s) => Ok(Constant::Str(s.clone())),
            other => Err(ParseError::new(
                offset,
                format!("expected a constant, found {}", other.describe()),
            )),
        }
    }
}

/// One parsed atom term before constants are desugared. Constants carry
/// their source offset so desugared predicates keep a real position.
enum Term {
    Var(String),
    Const(Constant, usize),
}

/// Parse one request in the textual query language into a validated
/// [`QuerySpec`]. See the [module docs](self) for the grammar.
pub fn parse_query(text: &str) -> Result<QuerySpec, ParseError> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        end: text.len(),
    };

    // Head: ident "(" [var {"," var}] ")". The head name is not retained.
    // Offsets ride along with every head and predicate variable so the
    // post-parse validation below can point at the offending token.
    p.ident("the head name")?;
    p.expect(Tok::LParen)?;
    let mut free = Vec::new();
    let mut head_offsets = Vec::new();
    if p.peek() != Some(&Tok::RParen) {
        loop {
            head_offsets.push(p.offset());
            free.push(p.ident("a head variable")?);
            if p.peek() == Some(&Tok::Comma) {
                p.pos += 1;
            } else {
                break;
            }
        }
    }
    p.expect(Tok::RParen)?;
    p.expect(Tok::Turnstile)?;

    // Body: atoms and predicates separated by commas.
    let body_offset = p.offset();
    let mut raw_atoms: Vec<(String, Vec<Term>)> = Vec::new();
    let mut predicates: Vec<Predicate> = Vec::new();
    let mut predicate_offsets: Vec<usize> = Vec::new();
    loop {
        match (p.peek(), p.peek2()) {
            // ident "(" … ")" — an atom.
            (Some(Tok::Ident(_)), Some(Tok::LParen)) => {
                let relation = p.ident("a relation name")?;
                p.expect(Tok::LParen)?;
                let mut terms = Vec::new();
                if p.peek() != Some(&Tok::RParen) {
                    loop {
                        let offset = p.offset();
                        let term = match p.next("a variable or constant")? {
                            Tok::Ident(v) => Term::Var(v.clone()),
                            Tok::Int(v) => Term::Const(Constant::Int(*v), offset),
                            Tok::Str(s) => Term::Const(Constant::Str(s.clone()), offset),
                            other => {
                                return Err(ParseError::new(
                                    offset,
                                    format!(
                                        "expected a variable or constant, found {}",
                                        other.describe()
                                    ),
                                ));
                            }
                        };
                        terms.push(term);
                        if p.peek() == Some(&Tok::Comma) {
                            p.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                p.expect(Tok::RParen)?;
                raw_atoms.push((relation, terms));
            }
            // var "=" constant — a predicate.
            (Some(Tok::Ident(_)), Some(Tok::Eq)) => {
                predicate_offsets.push(p.offset());
                let variable = p.ident("a variable")?;
                p.expect(Tok::Eq)?;
                let constant = p.constant()?;
                predicates.push(Predicate { variable, constant });
            }
            // constant "=" var — a flipped predicate.
            (Some(Tok::Int(_)) | Some(Tok::Str(_)), _) => {
                let constant = p.constant()?;
                p.expect(Tok::Eq)?;
                predicate_offsets.push(p.offset());
                let variable = p.ident("a variable")?;
                predicates.push(Predicate { variable, constant });
            }
            _ => {
                return Err(ParseError::new(
                    p.offset(),
                    "expected an atom `R(…)` or a predicate `x = c`",
                ));
            }
        }
        if p.peek() == Some(&Tok::Comma) {
            p.pos += 1;
        } else {
            break;
        }
    }

    // Trailing clauses, any order, each at most once.
    let mut ranking: Option<RankingFunction> = None;
    let mut algorithm = None;
    let mut limit = None;
    let mut shards = None;
    loop {
        let offset = p.offset();
        if p.eat_ident("rank") {
            if ranking.is_some() {
                return Err(ParseError::new(offset, "duplicate `rank by` clause"));
            }
            if !p.eat_ident("by") {
                return Err(ParseError::new(p.offset(), "expected `by` after `rank`"));
            }
            let which = p.offset();
            let name = p.ident("a ranking (`sum` or `bottleneck`)")?;
            ranking = Some(match name.as_str() {
                "sum" => {
                    if p.eat_ident("desc") {
                        RankingFunction::SumDescending
                    } else {
                        p.eat_ident("asc");
                        RankingFunction::SumAscending
                    }
                }
                "bottleneck" => {
                    if p.eat_ident("desc") {
                        return Err(ParseError::new(
                            which,
                            "descending bottleneck ranking is not supported",
                        ));
                    }
                    p.eat_ident("asc");
                    RankingFunction::BottleneckAscending
                }
                other => {
                    return Err(ParseError::new(
                        which,
                        format!("unknown ranking `{other}` (expected `sum` or `bottleneck`)"),
                    ));
                }
            });
        } else if p.eat_ident("via") {
            if algorithm.is_some() {
                return Err(ParseError::new(offset, "duplicate `via` clause"));
            }
            let which = p.offset();
            let name = p.ident("an algorithm name")?;
            algorithm = Some(algorithm_from_token(&name).ok_or_else(|| {
                ParseError::new(
                    which,
                    format!(
                        "unknown algorithm `{name}` (expected eager, lazy, all, \
                         take2, recursive, or batch)"
                    ),
                )
            })?);
        } else if p.eat_ident("limit") {
            if limit.is_some() {
                return Err(ParseError::new(offset, "duplicate `limit` clause"));
            }
            let which = p.offset();
            match p.next("a limit")? {
                Tok::Int(v) => limit = Some(*v as usize),
                other => {
                    return Err(ParseError::new(
                        which,
                        format!("expected a limit count, found {}", other.describe()),
                    ));
                }
            }
        } else if p.eat_ident("shards") {
            if shards.is_some() {
                return Err(ParseError::new(offset, "duplicate `shards` clause"));
            }
            let which = p.offset();
            match p.next("a shard count")? {
                Tok::Int(v) => shards = Some(*v as usize),
                other => {
                    return Err(ParseError::new(
                        which,
                        format!("expected a shard count, found {}", other.describe()),
                    ));
                }
            }
        } else {
            break;
        }
    }
    if p.pos < toks.len() {
        return Err(ParseError::new(
            p.offset(),
            format!(
                "unexpected {} after the end of the query",
                toks[p.pos].0.describe()
            ),
        ));
    }

    // Desugar inline constants into fresh variables plus predicates, so
    // `R(x, 7)` and `R(x, y), y = 7` canonicalize identically.
    let mut used: std::collections::HashSet<String> = free.iter().cloned().collect();
    for (_, terms) in &raw_atoms {
        for t in terms {
            if let Term::Var(v) = t {
                used.insert(v.clone());
            }
        }
    }
    let mut fresh_counter = 0usize;
    let mut fresh = move |used: &mut std::collections::HashSet<String>| loop {
        let name = format!("_c{fresh_counter}");
        fresh_counter += 1;
        if used.insert(name.clone()) {
            return name;
        }
    };
    let atoms: Vec<Atom> = raw_atoms
        .into_iter()
        .map(|(relation, terms)| Atom {
            relation,
            variables: terms
                .into_iter()
                .map(|t| match t {
                    Term::Var(v) => v,
                    Term::Const(c, offset) => {
                        let v = fresh(&mut used);
                        predicates.push(Predicate {
                            variable: v.clone(),
                            constant: c,
                        });
                        predicate_offsets.push(offset);
                        v
                    }
                })
                .collect(),
        })
        .collect();

    let spec = QuerySpec {
        atoms,
        free,
        predicates,
        ranking: ranking.unwrap_or_default(),
        algorithm,
        limit,
        shards,
    };

    // The same checks as `QuerySpec::validate`, but each failure points at
    // the offending token rather than byte 0.
    if spec.atoms.is_empty() {
        return Err(ParseError::new(
            body_offset,
            QueryError::EmptyBody.to_string(),
        ));
    }
    for (i, (v, &offset)) in spec.free.iter().zip(&head_offsets).enumerate() {
        if !spec.atoms.iter().any(|a| a.binds(v)) {
            return Err(ParseError::new(
                offset,
                QueryError::UnknownHeadVariable {
                    variable: v.clone(),
                }
                .to_string(),
            ));
        }
        if spec.free[..i].contains(v) {
            return Err(ParseError::new(
                offset,
                QueryError::DuplicateHeadVariable {
                    variable: v.clone(),
                }
                .to_string(),
            ));
        }
    }
    for (p, &offset) in spec.predicates.iter().zip(&predicate_offsets) {
        if !spec.atoms.iter().any(|a| a.binds(&p.variable)) {
            return Err(ParseError::new(
                offset,
                QueryError::UnknownPredicateVariable {
                    variable: p.variable.clone(),
                }
                .to_string(),
            ));
        }
    }
    debug_assert!(spec.validate().is_ok(), "inline checks mirror validate()");
    Ok(spec)
}

impl std::str::FromStr for QuerySpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_query(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_core::AnyKAlgorithm;

    #[test]
    fn parses_the_issue_example() {
        let s = parse_query("Q(x, z) :- R(x, y), S(y, z), y = 7 rank by sum limit 1000").unwrap();
        assert_eq!(s.atoms.len(), 2);
        assert_eq!(s.free, vec!["x", "z"]);
        assert_eq!(s.predicates, vec![Predicate::int("y", 7)]);
        assert_eq!(s.ranking, RankingFunction::SumAscending);
        assert_eq!(s.limit, Some(1000));
        assert_eq!(s.algorithm, None);
    }

    #[test]
    fn inline_constants_desugar_like_explicit_predicates() {
        let sugar = parse_query("Q(x) :- R(x, 7)").unwrap();
        let explicit = parse_query("Q(x) :- R(x, y), y = 7").unwrap();
        assert_eq!(sugar.canonical_text(), explicit.canonical_text());
        let s = parse_query("Q(u) :- Follows(u, \"alice\")").unwrap();
        assert_eq!(s.predicates, vec![Predicate::text("_c0", "alice")],);
    }

    #[test]
    fn fresh_variables_avoid_user_names() {
        let s = parse_query("Q(_c0) :- R(_c0, 7)").unwrap();
        assert_eq!(s.atoms[0].variables[0], "_c0");
        assert_ne!(s.atoms[0].variables[1], "_c0");
        assert!(s.atoms[0].variables[1].starts_with("_c"));
    }

    #[test]
    fn clauses_parse_in_any_order() {
        let a = parse_query("Q(x) :- R(x, y) rank by sum desc via lazy limit 5").unwrap();
        let b = parse_query("Q(x) :- R(x, y) limit 5 via lazy rank by sum desc").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.ranking, RankingFunction::SumDescending);
        assert_eq!(a.algorithm, Some(AnyKAlgorithm::Lazy));
        assert_eq!(a.limit, Some(5));
    }

    #[test]
    fn shards_clause_parses_round_trips_and_rejects_duplicates() {
        let s = parse_query("Q(x) :- R(x, y) via lazy shards 4 limit 5").unwrap();
        assert_eq!(s.shards, Some(4));
        assert_eq!(s.to_text(), "Q(x) :- R(x, y) via lazy limit 5 shards 4");
        assert_eq!(parse_query(&s.to_text()).unwrap(), s);
        // Execution attribute: stripped from the plan key like limit/via.
        assert_eq!(
            s.plan_key(),
            parse_query("Q(x) :- R(x, y)").unwrap().plan_key()
        );
        assert!(parse_query("Q(x) :- R(x, y) shards 2 shards 4")
            .unwrap_err()
            .message
            .contains("duplicate `shards`"));
        assert!(parse_query("Q(x) :- R(x, y) shards lots")
            .unwrap_err()
            .message
            .contains("shard count"));
    }

    #[test]
    fn flipped_predicates_and_repeated_variables() {
        let s = parse_query("Q(x, y) :- R(x, x), S(x, y), 3 = y").unwrap();
        assert_eq!(s.atoms[0].variables, vec!["x", "x"]);
        assert_eq!(s.predicates, vec![Predicate::int("y", 3)]);
    }

    #[test]
    fn rankings_parse_with_optional_direction() {
        assert_eq!(
            parse_query("Q(x) :- R(x, y) rank by sum asc")
                .unwrap()
                .ranking,
            RankingFunction::SumAscending
        );
        assert_eq!(
            parse_query("Q(x) :- R(x, y) rank by bottleneck")
                .unwrap()
                .ranking,
            RankingFunction::BottleneckAscending
        );
        let err = parse_query("Q(x) :- R(x, y) rank by bottleneck desc").unwrap_err();
        assert!(err.message.contains("not supported"));
    }

    #[test]
    fn syntax_errors_carry_offsets() {
        let err = parse_query("Q(x) :- R(x, y) rank by lexicographic").unwrap_err();
        assert!(err.message.contains("lexicographic"));
        assert_eq!(err.offset, 24);
        let err = parse_query("Q(x)").unwrap_err();
        assert!(err.to_string().contains("end of input"));
        assert!(parse_query("").is_err());
        assert!(parse_query("Q(x) : R(x, y)").is_err());
        assert!(parse_query("Q(x) :- R(x, y) extra").is_err());
        assert!(parse_query("Q(x) :- R(x, \"oops)").is_err());
    }

    #[test]
    fn validation_errors_point_at_the_offending_token() {
        let err = parse_query("Q(zz) :- R(x, y)").unwrap_err();
        assert!(err.message.contains("zz"));
        assert_eq!(err.offset, 2, "points at `zz`");
        let err = parse_query("Q(x) :- R(x, y), q = 3").unwrap_err();
        assert!(err.message.contains("`q`"));
        assert_eq!(err.offset, 17, "points at `q`");
        let err = parse_query("Q(x) :- R(x, y), 3 = q").unwrap_err();
        assert_eq!(err.offset, 21, "flipped predicate points at `q`");
        let err = parse_query("Q(x, y, x) :- R(x, y)").unwrap_err();
        assert!(err.message.contains("more than once"));
        assert_eq!(err.offset, 8, "points at the second `x`");
        let err = parse_query("Q(x) :- x = 3").unwrap_err();
        assert!(err.message.contains("at least one atom"));
        assert_eq!(err.offset, 8, "points at the body");
    }

    #[test]
    fn keywords_are_contextual() {
        // A relation named `rank` and a variable named `limit` are legal.
        let s = parse_query("Q(limit) :- rank(limit, via) limit 2").unwrap();
        assert_eq!(s.atoms[0].relation, "rank");
        assert_eq!(s.free, vec!["limit"]);
        assert_eq!(s.limit, Some(2));
    }

    #[test]
    fn strings_support_escapes_and_unicode() {
        let s = parse_query("Q(x) :- R(x, \"a\\\"b\\\\cé\")").unwrap();
        assert_eq!(
            s.predicates[0].constant,
            Constant::Str("a\"b\\cé".to_string())
        );
    }
}
