//! Atoms of a conjunctive query.

use crate::error::QueryError;

/// An atom `g(x₁, …, x_a)`: a reference to a stored relation together with
/// the query variables bound to its columns.
///
/// Different atoms may reference the same physical relation (self-joins), and
/// the same variable may appear in several atoms (equi-join conditions) —
/// both exactly as in §2.1 of the paper. Repeated variables *within* one atom
/// (`R(x, x)`) are selections; as the paper notes (§2.1), the engine applies
/// them to a filtered relation copy in a linear-time preprocessing step
/// before compilation, so they are fully supported through both the builder
/// and the textual ([`crate::QuerySpec`]) APIs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Name of the physical relation this atom scans.
    pub relation: String,
    /// Variable names, one per column of the relation.
    pub variables: Vec<String>,
}

impl Atom {
    /// Create an atom.
    pub fn new(relation: impl Into<String>, variables: &[&str]) -> Self {
        Atom {
            relation: relation.into(),
            variables: variables.iter().map(|v| v.to_string()).collect(),
        }
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.variables.len()
    }

    /// Whether the atom binds the given variable.
    pub fn binds(&self, variable: &str) -> bool {
        self.variables.iter().any(|v| v == variable)
    }

    /// Column positions of the given variables within this atom (in the
    /// order given; the *first* binding column for a repeated variable).
    /// Returns [`QueryError::UnboundVariable`] if a variable is not bound by
    /// the atom — arbitrary variable names can reach this through the textual
    /// query path, so the lookup is fallible rather than panicking.
    pub fn positions_of(&self, variables: &[String]) -> Result<Vec<usize>, QueryError> {
        variables
            .iter()
            .map(|v| {
                self.variables.iter().position(|x| x == v).ok_or_else(|| {
                    QueryError::UnboundVariable {
                        atom: self.relation.clone(),
                        variable: v.clone(),
                    }
                })
            })
            .collect()
    }

    /// The variables shared with another atom (in this atom's order).
    pub fn shared_variables(&self, other: &Atom) -> Vec<String> {
        self.variables
            .iter()
            .filter(|v| other.binds(v))
            .cloned()
            .collect()
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.relation, self.variables.join(", "))
    }
}

/// All distinct variables of `atoms` in first-occurrence order (scanning
/// atoms left to right, positions in order) — the one definition of body
/// variable order shared by [`crate::ConjunctiveQuery::variables`] and
/// [`crate::QuerySpec::variables`], and therefore by head defaulting and
/// canonical alpha-renaming.
pub fn distinct_variables(atoms: &[Atom]) -> Vec<String> {
    let mut seen = Vec::new();
    for a in atoms {
        for v in &a.variables {
            if !seen.contains(v) {
                seen.push(v.clone());
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bindings() {
        let a = Atom::new("R", &["x", "y"]);
        assert_eq!(a.arity(), 2);
        assert!(a.binds("x"));
        assert!(!a.binds("z"));
        assert_eq!(a.to_string(), "R(x, y)");
    }

    #[test]
    fn shared_variables_and_positions() {
        let a = Atom::new("R", &["x", "y", "z"]);
        let b = Atom::new("S", &["z", "x"]);
        assert_eq!(a.shared_variables(&b), vec!["x", "z"]);
        assert_eq!(
            a.positions_of(&["z".to_string(), "x".to_string()]).unwrap(),
            vec![2, 0]
        );
    }

    #[test]
    fn positions_of_unbound_variable_is_a_typed_error() {
        let err = Atom::new("R", &["x"])
            .positions_of(&["q".to_string()])
            .unwrap_err();
        assert_eq!(
            err,
            QueryError::UnboundVariable {
                atom: "R".into(),
                variable: "q".into(),
            }
        );
        assert!(err.to_string().contains("not bound"));
    }
}
