//! Atoms of a conjunctive query.

/// An atom `g(x₁, …, x_a)`: a reference to a stored relation together with
/// the query variables bound to its columns.
///
/// Different atoms may reference the same physical relation (self-joins), and
/// the same variable may appear in several atoms (equi-join conditions) —
/// both exactly as in §2.1 of the paper. Repeated variables *within* one atom
/// are not supported directly; as the paper notes, such selections can be
/// applied to a copied relation in a linear-time preprocessing step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Name of the physical relation this atom scans.
    pub relation: String,
    /// Variable names, one per column of the relation.
    pub variables: Vec<String>,
}

impl Atom {
    /// Create an atom.
    pub fn new(relation: impl Into<String>, variables: &[&str]) -> Self {
        Atom {
            relation: relation.into(),
            variables: variables.iter().map(|v| v.to_string()).collect(),
        }
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.variables.len()
    }

    /// Whether the atom binds the given variable.
    pub fn binds(&self, variable: &str) -> bool {
        self.variables.iter().any(|v| v == variable)
    }

    /// Column positions of the given variables within this atom (in the
    /// order given). Panics if a variable is not bound by the atom.
    pub fn positions_of(&self, variables: &[String]) -> Vec<usize> {
        variables
            .iter()
            .map(|v| {
                self.variables
                    .iter()
                    .position(|x| x == v)
                    .unwrap_or_else(|| panic!("variable {v} not bound by atom {}", self.relation))
            })
            .collect()
    }

    /// The variables shared with another atom (in this atom's order).
    pub fn shared_variables(&self, other: &Atom) -> Vec<String> {
        self.variables
            .iter()
            .filter(|v| other.binds(v))
            .cloned()
            .collect()
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.relation, self.variables.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bindings() {
        let a = Atom::new("R", &["x", "y"]);
        assert_eq!(a.arity(), 2);
        assert!(a.binds("x"));
        assert!(!a.binds("z"));
        assert_eq!(a.to_string(), "R(x, y)");
    }

    #[test]
    fn shared_variables_and_positions() {
        let a = Atom::new("R", &["x", "y", "z"]);
        let b = Atom::new("S", &["z", "x"]);
        assert_eq!(a.shared_variables(&b), vec!["x", "z"]);
        assert_eq!(
            a.positions_of(&["z".to_string(), "x".to_string()]),
            vec![2, 0]
        );
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn positions_of_unbound_variable_panics() {
        Atom::new("R", &["x"]).positions_of(&["q".to_string()]);
    }
}
