//! The GYO reduction: alpha-acyclicity testing and join-tree construction
//! (§2.1).
//!
//! The reduction repeatedly removes an *ear*: an atom all of whose variables
//! are either exclusive to it or contained in some other atom (its
//! *witness*). A query is alpha-acyclic iff every atom can be removed this
//! way; recording the witness of every removed ear yields a **join tree**,
//! which the engine serialises into T-DP stages (§5.1).

use crate::atom::Atom;
use std::collections::BTreeSet;

/// A rooted join tree over the atoms of an acyclic query.
///
/// Nodes are atom indices (positions in the query's atom list). Queries whose
/// hypergraph has several connected components (cross products) get the extra
/// components attached directly under the root — a valid join tree in which
/// those edges simply have an empty join key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTree {
    root: usize,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
}

impl JoinTree {
    fn from_parents(root: usize, parent: Vec<Option<usize>>) -> Self {
        let mut children = vec![Vec::new(); parent.len()];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(i);
            }
        }
        JoinTree {
            root,
            parent,
            children,
        }
    }

    /// The root atom index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of atoms in the tree.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the tree has no atoms (never the case for a valid query).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The parent of atom `i` (`None` for the root).
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// The children of atom `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Atoms in parents-first (pre-order DFS) order starting at the root.
    pub fn traversal_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.parent.len());
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            order.push(i);
            for &c in self.children[i].iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// The same tree re-rooted at `new_root` (parent pointers along the path
    /// from the old root are reversed). Used to root the tree at an atom that
    /// covers free variables (§8.1).
    pub fn rerooted(&self, new_root: usize) -> JoinTree {
        assert!(new_root < self.parent.len(), "unknown atom index");
        let mut parent = self.parent.clone();
        // Reverse the chain new_root -> ... -> old root.
        let mut prev: Option<usize> = None;
        let mut cur = Some(new_root);
        while let Some(c) = cur {
            let next = parent[c];
            parent[c] = prev;
            prev = Some(c);
            cur = next;
        }
        JoinTree::from_parents(new_root, parent)
    }

    /// Validate the running-intersection property against the atoms this tree
    /// was built for: for every variable, the atoms containing it must form a
    /// connected subtree. Primarily a testing aid.
    pub fn satisfies_running_intersection(&self, atoms: &[Atom]) -> bool {
        let mut vars: Vec<&String> = Vec::new();
        for a in atoms {
            for v in &a.variables {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        for v in vars {
            let holders: Vec<usize> = atoms
                .iter()
                .enumerate()
                .filter(|(_, a)| a.binds(v))
                .map(|(i, _)| i)
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            // Walk up from every holder; the variable must stay present until
            // reaching the subtree-root of the holders.
            // Simple connectivity check: count holders reachable from the
            // "highest" holder through holder-only edges.
            let mut connected = vec![false; atoms.len()];
            // Find a holder whose parent is not a holder (subtree top).
            let top = holders
                .iter()
                .copied()
                .find(|&h| match self.parent(h) {
                    None => true,
                    Some(p) => !holders.contains(&p),
                })
                .unwrap_or(holders[0]);
            let mut stack = vec![top];
            connected[top] = true;
            while let Some(i) = stack.pop() {
                for &c in self.children(i) {
                    if holders.contains(&c) && !connected[c] {
                        connected[c] = true;
                        stack.push(c);
                    }
                }
            }
            if holders.iter().any(|&h| !connected[h]) {
                return false;
            }
        }
        true
    }
}

/// Run the GYO reduction on raw hyperedges. Returns the ear-removal sequence
/// `(edge index, witness index)` if the hypergraph is alpha-acyclic, `None`
/// otherwise.
pub fn gyo_reduce_edges(edges: Vec<BTreeSet<String>>) -> Option<Vec<(usize, Option<usize>)>> {
    let n = edges.len();
    let mut alive = vec![true; n];
    let mut removal = Vec::with_capacity(n);
    let mut remaining = n;
    while remaining > 0 {
        let mut progressed = false;
        'search: for e in 0..n {
            if !alive[e] {
                continue;
            }
            // Variables of e shared with some other alive edge.
            let shared: BTreeSet<&String> = edges[e]
                .iter()
                .filter(|v| (0..n).any(|o| o != e && alive[o] && edges[o].contains(v.as_str())))
                .collect();
            if shared.is_empty() {
                alive[e] = false;
                remaining -= 1;
                removal.push((e, None));
                progressed = true;
                break 'search;
            }
            for w in 0..n {
                if w == e || !alive[w] {
                    continue;
                }
                if shared.iter().all(|v| edges[w].contains(v.as_str())) {
                    alive[e] = false;
                    remaining -= 1;
                    removal.push((e, Some(w)));
                    progressed = true;
                    break 'search;
                }
            }
        }
        if !progressed {
            return None;
        }
    }
    Some(removal)
}

/// Build a join tree for the atoms of an acyclic query; `None` if cyclic.
pub fn join_tree(atoms: &[Atom]) -> Option<JoinTree> {
    let edges: Vec<BTreeSet<String>> = atoms
        .iter()
        .map(|a| a.variables.iter().cloned().collect())
        .collect();
    let removal = gyo_reduce_edges(edges)?;
    let mut parent: Vec<Option<usize>> = vec![None; atoms.len()];
    let mut component_roots = Vec::new();
    for (ear, witness) in removal {
        match witness {
            Some(w) => parent[ear] = Some(w),
            None => component_roots.push(ear),
        }
    }
    // The last component root removed becomes the global root; other
    // component roots (cross-product factors) hang directly under it.
    let root = *component_roots.last().expect("at least one root");
    for &r in &component_roots {
        if r != root {
            parent[r] = Some(root);
        }
    }
    Some(JoinTree::from_parents(root, parent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::QueryBuilder;

    #[test]
    fn path_query_yields_a_chain() {
        let q = QueryBuilder::path(4).build();
        let t = join_tree(q.atoms()).unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.satisfies_running_intersection(q.atoms()));
        // Exactly one root, every other node has a parent, chain shape.
        let roots = (0..4).filter(|&i| t.parent(i).is_none()).count();
        assert_eq!(roots, 1);
        for i in 0..4 {
            assert!(t.children(i).len() <= 1, "a path join tree is a chain");
        }
        assert_eq!(t.traversal_order().len(), 4);
    }

    #[test]
    fn star_query_join_tree_has_center_root() {
        let q = QueryBuilder::star(4).build();
        let t = join_tree(q.atoms()).unwrap();
        assert!(t.satisfies_running_intersection(q.atoms()));
        // The root covers the shared variable, and the tree has depth 1 or 2.
        let depth_one = t.children(t.root()).len();
        assert!(depth_one >= 1);
    }

    #[test]
    fn cycle_query_has_no_join_tree() {
        let q = QueryBuilder::cycle(4).build();
        assert!(join_tree(q.atoms()).is_none());
        let q6 = QueryBuilder::cycle(6).build();
        assert!(join_tree(q6.atoms()).is_none());
    }

    #[test]
    fn cross_product_components_are_attached_under_one_root() {
        let atoms = vec![
            Atom::new("R", &["x", "y"]),
            Atom::new("S", &["a", "b"]),
            Atom::new("T", &["b", "c"]),
        ];
        let t = join_tree(&atoms).unwrap();
        assert_eq!(t.len(), 3);
        let roots = (0..3).filter(|&i| t.parent(i).is_none()).count();
        assert_eq!(roots, 1, "cross products still yield a single rooted tree");
        assert!(t.satisfies_running_intersection(&atoms));
    }

    #[test]
    fn rerooting_preserves_edges_and_running_intersection() {
        let q = QueryBuilder::path(4).build();
        let t = join_tree(q.atoms()).unwrap();
        for new_root in 0..4 {
            let r = t.rerooted(new_root);
            assert_eq!(r.root(), new_root);
            assert!(r.satisfies_running_intersection(q.atoms()));
            assert_eq!(r.traversal_order().len(), 4);
            let roots = (0..4).filter(|&i| r.parent(i).is_none()).count();
            assert_eq!(roots, 1);
        }
    }

    #[test]
    fn acyclic_non_binary_query() {
        // Q :- R(x,y,z), S(z,w), T(w) — acyclic with witnesses chaining up.
        let atoms = vec![
            Atom::new("R", &["x", "y", "z"]),
            Atom::new("S", &["z", "w"]),
            Atom::new("T", &["w"]),
        ];
        let t = join_tree(&atoms).unwrap();
        assert!(t.satisfies_running_intersection(&atoms));
    }
}
