//! Typed errors for query construction and validation.

use std::fmt;

/// Errors raised when constructing or validating conjunctive queries and
/// [`crate::QuerySpec`]s.
///
/// These replace the panics the structural API used to rely on: the textual
/// query path ([`crate::parse_query`]) can feed arbitrary relation and
/// variable names, so every lookup that used to be a programmer-error panic
/// is now a recoverable, typed failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A variable position was requested from an atom that does not bind it.
    UnboundVariable {
        /// Relation name of the atom.
        atom: String,
        /// The variable that the atom does not bind.
        variable: String,
    },
    /// A head (free) variable does not occur in any body atom.
    UnknownHeadVariable {
        /// The offending head variable.
        variable: String,
    },
    /// The same variable occurs twice in the head.
    DuplicateHeadVariable {
        /// The duplicated head variable.
        variable: String,
    },
    /// A selection predicate references a variable no atom binds.
    UnknownPredicateVariable {
        /// The offending predicate variable.
        variable: String,
    },
    /// The query has no body atoms.
    EmptyBody,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnboundVariable { atom, variable } => {
                write!(f, "variable `{variable}` is not bound by atom `{atom}`")
            }
            QueryError::UnknownHeadVariable { variable } => {
                write!(f, "head variable `{variable}` does not occur in the body")
            }
            QueryError::DuplicateHeadVariable { variable } => {
                write!(f, "head variable `{variable}` occurs more than once")
            }
            QueryError::UnknownPredicateVariable { variable } => {
                write!(
                    f,
                    "selection predicate references variable `{variable}`, which no atom binds"
                )
            }
            QueryError::EmptyBody => write!(f, "a conjunctive query needs at least one atom"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offenders() {
        let e = QueryError::UnboundVariable {
            atom: "R".into(),
            variable: "q".into(),
        };
        assert!(e.to_string().contains("`q`"));
        assert!(e.to_string().contains("`R`"));
        assert!(QueryError::EmptyBody.to_string().contains("at least one"));
    }
}
