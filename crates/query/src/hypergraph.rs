//! Query hypergraphs.
//!
//! A CQ is represented by a hypergraph whose nodes are the query variables
//! and whose hyperedges are the atoms' variable sets (§2.1). Acyclicity of
//! the query is alpha-acyclicity of this hypergraph, decided by the GYO
//! reduction in [`crate::gyo`].

use crate::atom::Atom;
use std::collections::BTreeSet;

/// A hypergraph over string-named nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    nodes: Vec<String>,
    /// Each hyperedge is the set of node names it contains.
    edges: Vec<BTreeSet<String>>,
}

impl Hypergraph {
    /// Build the hypergraph of a set of atoms.
    pub fn from_atoms(atoms: &[Atom]) -> Self {
        let mut h = Hypergraph {
            nodes: Vec::new(),
            edges: Vec::new(),
        };
        for a in atoms {
            h.add_edge(a.variables.iter().cloned());
        }
        h
    }

    /// An empty hypergraph.
    pub fn new() -> Self {
        Hypergraph {
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a hyperedge (its nodes are added on demand). Returns the edge id.
    pub fn add_edge(&mut self, nodes: impl IntoIterator<Item = String>) -> usize {
        let set: BTreeSet<String> = nodes.into_iter().collect();
        for n in &set {
            if !self.nodes.contains(n) {
                self.nodes.push(n.clone());
            }
        }
        self.edges.push(set);
        self.edges.len() - 1
    }

    /// The node names.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[BTreeSet<String>] {
        &self.edges
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether this hypergraph is alpha-acyclic (GYO reduction succeeds).
    pub fn is_acyclic(&self) -> bool {
        crate::gyo::gyo_reduce_edges(self.edges.to_vec()).is_some()
    }
}

impl Default for Hypergraph {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_produce_edges_and_nodes() {
        let atoms = vec![Atom::new("R", &["x", "y"]), Atom::new("S", &["y", "z"])];
        let h = Hypergraph::from_atoms(&atoms);
        assert_eq!(h.nodes().len(), 3);
        assert_eq!(h.num_edges(), 2);
        assert!(h.is_acyclic());
    }

    #[test]
    fn triangle_is_cyclic() {
        let atoms = vec![
            Atom::new("R", &["x", "y"]),
            Atom::new("S", &["y", "z"]),
            Atom::new("T", &["z", "x"]),
        ];
        assert!(!Hypergraph::from_atoms(&atoms).is_acyclic());
    }

    #[test]
    fn extra_covering_edge_makes_triangle_acyclic() {
        // Adding a hyperedge {x,y,z} turns the triangle alpha-acyclic —
        // exactly the trick used by the free-connex test (§8.1).
        let mut h = Hypergraph::from_atoms(&[
            Atom::new("R", &["x", "y"]),
            Atom::new("S", &["y", "z"]),
            Atom::new("T", &["z", "x"]),
        ]);
        h.add_edge(["x".to_string(), "y".to_string(), "z".to_string()]);
        assert!(h.is_acyclic());
    }
}
