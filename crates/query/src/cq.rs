//! Conjunctive queries.

use crate::atom::Atom;
use crate::free_connex;
use crate::gyo;
use crate::hypergraph::Hypergraph;

/// A conjunctive query `Q(y) :− g₁(x₁), …, g_ℓ(x_ℓ)` (§2.1).
///
/// A query is **full** when its head contains every variable of the body
/// (the default); a non-full query projects onto `free` variables (§8.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    atoms: Vec<Atom>,
    /// `None` for a full query; otherwise the free (head) variables.
    free: Option<Vec<String>>,
}

impl ConjunctiveQuery {
    /// A full conjunctive query over the given atoms.
    pub fn full(atoms: Vec<Atom>) -> Self {
        assert!(
            !atoms.is_empty(),
            "a conjunctive query needs at least one atom"
        );
        ConjunctiveQuery { atoms, free: None }
    }

    /// A query with projection onto `free` variables.
    ///
    /// # Panics
    /// Panics if a free variable does not occur in any atom.
    pub fn with_projection(atoms: Vec<Atom>, free: Vec<String>) -> Self {
        for v in &free {
            assert!(
                atoms.iter().any(|a| a.binds(v)),
                "free variable {v} does not occur in the body"
            );
        }
        assert!(
            !atoms.is_empty(),
            "a conjunctive query needs at least one atom"
        );
        ConjunctiveQuery {
            atoms,
            free: Some(free),
        }
    }

    /// The body atoms, in order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms (the paper's ℓ).
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// All distinct variables of the body, in first-occurrence order.
    pub fn variables(&self) -> Vec<String> {
        crate::atom::distinct_variables(&self.atoms)
    }

    /// The head (output) variables: all variables for a full query, the
    /// declared free variables otherwise.
    pub fn head_variables(&self) -> Vec<String> {
        match &self.free {
            None => self.variables(),
            Some(f) => f.clone(),
        }
    }

    /// Whether the query is full (no projection).
    pub fn is_full(&self) -> bool {
        match &self.free {
            None => true,
            Some(f) => {
                let vars = self.variables();
                vars.iter().all(|v| f.contains(v)) && f.len() == vars.len()
            }
        }
    }

    /// The query hypergraph (variables as nodes, atoms as hyperedges).
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph::from_atoms(&self.atoms)
    }

    /// Whether the query is alpha-acyclic (GYO reduction succeeds, §2.1).
    pub fn is_acyclic(&self) -> bool {
        gyo::join_tree(&self.atoms).is_some()
    }

    /// Whether the query is acyclic **and** free-connex (§8.1) — the class
    /// admitting min-weight projection semantics with optimal guarantees.
    pub fn is_free_connex(&self) -> bool {
        free_connex::is_free_connex(self)
    }

    /// Whether the query has a self-join (two atoms over the same relation).
    pub fn has_self_join(&self) -> bool {
        for (i, a) in self.atoms.iter().enumerate() {
            for b in &self.atoms[i + 1..] {
                if a.relation == b.relation {
                    return true;
                }
            }
        }
        false
    }
}

impl std::fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let head = self.head_variables().join(", ");
        let body = self
            .atoms
            .iter()
            .map(Atom::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        write!(f, "Q({head}) :- {body}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::QueryBuilder;

    #[test]
    fn variables_in_first_occurrence_order() {
        let q = QueryBuilder::path(3).build();
        assert_eq!(q.variables(), vec!["x1", "x2", "x3", "x4"]);
        assert!(q.is_full());
        assert!(q.is_acyclic());
        assert!(!q.has_self_join());
    }

    #[test]
    fn cycles_are_detected_as_cyclic() {
        let q = QueryBuilder::cycle(4).build();
        assert!(!q.is_acyclic());
        assert!(q.is_full());
    }

    #[test]
    fn projection_head_variables() {
        let q = ConjunctiveQuery::with_projection(
            vec![Atom::new("R", &["x", "y"]), Atom::new("S", &["y", "z"])],
            vec!["x".to_string()],
        );
        assert_eq!(q.head_variables(), vec!["x"]);
        assert!(!q.is_full());
        assert_eq!(q.to_string(), "Q(x) :- R(x, y), S(y, z)");
    }

    #[test]
    #[should_panic(expected = "does not occur")]
    fn projection_onto_unknown_variable_panics() {
        ConjunctiveQuery::with_projection(vec![Atom::new("R", &["x"])], vec!["q".to_string()]);
    }

    #[test]
    fn self_join_detection() {
        let q = ConjunctiveQuery::full(vec![
            Atom::new("E", &["x", "y"]),
            Atom::new("E", &["y", "z"]),
        ]);
        assert!(q.has_self_join());
    }
}
