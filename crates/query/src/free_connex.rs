//! Free-connex acyclic queries (§8.1).
//!
//! A conjunctive query with projections admits ranked enumeration under
//! min-weight projection semantics with `TTF = O(n)` and
//! `Delay(k) = O(log k)` iff it is acyclic **and free-connex**
//! (Theorem 20 / Corollary 22). One convenient characterisation (Brault-Baron)
//! is used here: the query is free-connex iff the hypergraph obtained by
//! adding an extra hyperedge containing exactly the free variables is
//! alpha-acyclic.

use crate::cq::ConjunctiveQuery;
use crate::gyo::gyo_reduce_edges;
use std::collections::BTreeSet;

/// Whether `query` is acyclic and free-connex.
///
/// Full queries are free-connex iff they are acyclic (the added hyperedge
/// covers every variable, which never hurts alpha-acyclicity of an acyclic
/// hypergraph).
pub fn is_free_connex(query: &ConjunctiveQuery) -> bool {
    if !query.is_acyclic() {
        return false;
    }
    let mut edges: Vec<BTreeSet<String>> = query
        .atoms()
        .iter()
        .map(|a| a.variables.iter().cloned().collect())
        .collect();
    edges.push(query.head_variables().into_iter().collect());
    gyo_reduce_edges(edges).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::builders::QueryBuilder;

    #[test]
    fn full_acyclic_queries_are_free_connex() {
        assert!(QueryBuilder::path(3).build().is_free_connex());
        assert!(QueryBuilder::star(4).build().is_free_connex());
    }

    #[test]
    fn cyclic_queries_are_not_free_connex() {
        assert!(!QueryBuilder::cycle(4).build().is_free_connex());
    }

    #[test]
    fn classic_non_free_connex_example() {
        // Q(x, z) :- R(x, y), S(y, z) — the textbook acyclic query that is
        // *not* free-connex (its answers encode a Boolean matrix product).
        let q = ConjunctiveQuery::with_projection(
            vec![Atom::new("R", &["x", "y"]), Atom::new("S", &["y", "z"])],
            vec!["x".to_string(), "z".to_string()],
        );
        assert!(q.is_acyclic());
        assert!(!is_free_connex(&q));
    }

    #[test]
    fn projection_onto_connected_prefix_is_free_connex() {
        // Q(x, y) :- R(x, y), S(y, z): the free variables are covered by R,
        // so the query is free-connex.
        let q = ConjunctiveQuery::with_projection(
            vec![Atom::new("R", &["x", "y"]), Atom::new("S", &["y", "z"])],
            vec!["x".to_string(), "y".to_string()],
        );
        assert!(is_free_connex(&q));
    }

    #[test]
    fn example_19_query_is_free_connex() {
        // Q(y1,y2,y3,y4) :- R1(y1,y2), R2(y2,y3), R3(x1,y1,y4), R4(x2,y3)
        let q = ConjunctiveQuery::with_projection(
            vec![
                Atom::new("R1", &["y1", "y2"]),
                Atom::new("R2", &["y2", "y3"]),
                Atom::new("R3", &["x1", "y1", "y4"]),
                Atom::new("R4", &["x2", "y3"]),
            ],
            vec!["y1", "y2", "y3", "y4"]
                .into_iter()
                .map(String::from)
                .collect(),
        );
        assert!(q.is_acyclic());
        assert!(is_free_connex(&q));
    }
}
