//! # anyk-query
//!
//! Conjunctive-query representation, structural analysis, and the textual
//! request language:
//!
//! * [`Atom`] / [`ConjunctiveQuery`] — full (and non-full) CQs in the
//!   Datalog-style notation of §2.1;
//! * [`QuerySpec`] — one complete any-k request as a serializable value:
//!   atoms, head, selection predicates (`x = const`, repeated variables in
//!   an atom), [`RankingFunction`], algorithm choice, and limit — with a
//!   canonical form ([`QuerySpec::canonical_text`]) under which
//!   alpha-equivalent requests coincide, and a plan-cache key
//!   ([`QuerySpec::plan_key`]);
//! * [`parse`] / [`parse_query`] — a hand-rolled recursive-descent parser
//!   for the textual query language
//!   (`Q(x, z) :- R(x, y), S(y, z), y = 7 rank by sum limit 1000`), every
//!   failure a typed [`ParseError`];
//! * [`hypergraph::Hypergraph`] — the query hypergraph (variables as nodes,
//!   atoms as hyperedges);
//! * [`JoinTree`] and the GYO reduction ([`gyo`]) — alpha-acyclicity testing
//!   and join-tree construction in `O(|Q|)` data-independent time;
//! * [`free_connex`] — the free-connex test used for ranked enumeration
//!   under min-weight projection semantics (§8.1);
//! * [`QueryBuilder`] — convenience constructors for the path, star and
//!   cycle queries used throughout the paper's evaluation (§7, Appendix B).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod atom;
mod builders;
mod cq;
mod error;
pub mod free_connex;
pub mod gyo;
pub mod hypergraph;
pub mod parse;
mod ranking;
pub mod spec;

pub use atom::Atom;
pub use builders::QueryBuilder;
pub use cq::ConjunctiveQuery;
pub use error::QueryError;
pub use gyo::JoinTree;
pub use parse::{parse_query, ParseError};
pub use ranking::RankingFunction;
pub use spec::{Constant, Predicate, QuerySpec};
