//! # anyk-query
//!
//! Conjunctive-query representation and structural analysis:
//!
//! * [`Atom`] / [`ConjunctiveQuery`] — full (and non-full) CQs in the
//!   Datalog-style notation of §2.1;
//! * [`hypergraph::Hypergraph`] — the query hypergraph (variables as nodes,
//!   atoms as hyperedges);
//! * [`JoinTree`] and the GYO reduction ([`gyo`]) — alpha-acyclicity testing
//!   and join-tree construction in `O(|Q|)` data-independent time;
//! * [`free_connex`] — the free-connex test used for ranked enumeration
//!   under min-weight projection semantics (§8.1);
//! * [`QueryBuilder`] — convenience constructors for the path, star and
//!   cycle queries used throughout the paper's evaluation (§7, Appendix B).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod atom;
mod builders;
mod cq;
pub mod free_connex;
pub mod gyo;
pub mod hypergraph;

pub use atom::Atom;
pub use builders::QueryBuilder;
pub use cq::ConjunctiveQuery;
pub use gyo::JoinTree;
