//! `QuerySpec` — the single, serializable description of an any-k request.
//!
//! A [`QuerySpec`] bundles everything a ranked-enumeration request consists
//! of — body atoms, free (head) variables, selection predicates, ranking
//! function, algorithm choice, and an optional result limit — as one plain
//! value that can be built programmatically, parsed from the textual query
//! language ([`crate::parse_query`]), printed back to text, canonicalized,
//! and used as a cache key. It is the "logical plan as serializable value"
//! seam between clients and the execution layers: a service accepts the
//! text form over a wire, keys its prepared-plan cache by
//! [`QuerySpec::plan_key`], and hands the spec to the engine for selection
//! pushdown and compilation.
//!
//! ## Selections
//!
//! The paper (§2.1) treats selections — constants and repeated variables in
//! an atom — as a linear-time preprocessing copy of the affected relation.
//! A spec expresses them two ways, which the engine's pushdown pass treats
//! identically:
//!
//! * an explicit predicate `y = 7` (or `name = "alice"` for a
//!   dictionary-encoded column), held in [`QuerySpec::predicates`];
//! * a repeated variable within one atom, `R(x, x)`, held in the atom
//!   itself.
//!
//! ## Canonical form
//!
//! [`QuerySpec::canonical`] renames variables to `v0, v1, …` in first
//! occurrence order (scanning atoms left to right), sorts and deduplicates
//! predicates, and fixes the head name to `Q`; [`QuerySpec::canonical_text`]
//! prints that form. Parsing and printing are mutually inverse on canonical
//! specs — `parse(print(s)) == canonical(s)` and printing is idempotent — so
//! alpha-equivalent queries (`R(x,y),S(y,z)` vs `R(a,b),S(b,c)`) share one
//! canonical text and therefore one plan-cache entry.

use crate::atom::Atom;
use crate::cq::ConjunctiveQuery;
use crate::error::QueryError;
use crate::ranking::RankingFunction;
use anyk_core::AnyKAlgorithm;
use std::collections::HashMap;
use std::fmt;

/// A constant in a selection predicate (or, in the text language, inline in
/// an atom position).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    /// An integer constant, compared against raw-id columns.
    Int(u64),
    /// A string constant, resolved through the dictionary of the
    /// text-encoded column(s) binding the predicate's variable.
    Str(String),
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(v) => write!(f, "{v}"),
            Constant::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        _ => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
        }
    }
}

/// An equality selection predicate `variable = constant` (§2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Predicate {
    /// The constrained variable (must be bound by some atom).
    pub variable: String,
    /// The value the variable must equal.
    pub constant: Constant,
}

impl Predicate {
    /// Create a predicate `variable = constant`.
    pub fn new(variable: impl Into<String>, constant: Constant) -> Self {
        Predicate {
            variable: variable.into(),
            constant,
        }
    }

    /// Shorthand for an integer equality predicate.
    pub fn int(variable: impl Into<String>, value: u64) -> Self {
        Predicate::new(variable, Constant::Int(value))
    }

    /// Shorthand for a string equality predicate.
    pub fn text(variable: impl Into<String>, value: impl Into<String>) -> Self {
        Predicate::new(variable, Constant::Str(value.into()))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.variable, self.constant)
    }
}

/// The canonical lowercase token of each any-k algorithm in the text
/// language's `via` clause.
pub fn algorithm_token(algorithm: AnyKAlgorithm) -> &'static str {
    match algorithm {
        AnyKAlgorithm::Eager => "eager",
        AnyKAlgorithm::Lazy => "lazy",
        AnyKAlgorithm::All => "all",
        AnyKAlgorithm::Take2 => "take2",
        AnyKAlgorithm::Recursive => "recursive",
        AnyKAlgorithm::Batch => "batch",
    }
}

/// Parse an algorithm token of the `via` clause (inverse of
/// [`algorithm_token`]).
pub fn algorithm_from_token(token: &str) -> Option<AnyKAlgorithm> {
    Some(match token {
        "eager" => AnyKAlgorithm::Eager,
        "lazy" => AnyKAlgorithm::Lazy,
        "all" => AnyKAlgorithm::All,
        "take2" => AnyKAlgorithm::Take2,
        "recursive" => AnyKAlgorithm::Recursive,
        "batch" => AnyKAlgorithm::Batch,
        _ => return None,
    })
}

/// One complete any-k request as data: atoms, head, selections, ranking,
/// algorithm, limit. See the [module docs](self) for the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// The body atoms, in written order (order is part of spec identity; the
    /// canonical form does not reorder atoms).
    pub atoms: Vec<Atom>,
    /// The head (output) variables, in output-column order. Every head
    /// variable must be bound by some atom; the head need not cover all body
    /// variables (projection follows the engine's all-weight bag semantics).
    pub free: Vec<String>,
    /// Equality selection predicates, pushed down to filtered relation
    /// copies by the engine before compilation.
    pub predicates: Vec<Predicate>,
    /// The ranking function.
    pub ranking: RankingFunction,
    /// The requested any-k algorithm, if the request pins one (execution
    /// attribute: not part of [`QuerySpec::plan_key`]).
    pub algorithm: Option<AnyKAlgorithm>,
    /// Stop after this many ranked answers (execution attribute: not part of
    /// [`QuerySpec::plan_key`]).
    pub limit: Option<usize>,
    /// Prepare the plan hash-partitioned into this many shards, overriding
    /// the serving layer's default (execution attribute: not part of
    /// [`QuerySpec::plan_key`]; how — or whether — it is honoured is the
    /// execution layer's choice).
    pub shards: Option<usize>,
}

impl QuerySpec {
    /// A spec over `atoms` with head `free`, default ranking, no predicates,
    /// no algorithm pin, no limit.
    pub fn new(atoms: Vec<Atom>, free: Vec<String>) -> Self {
        QuerySpec {
            atoms,
            free,
            predicates: Vec::new(),
            ranking: RankingFunction::SumAscending,
            algorithm: None,
            limit: None,
            shards: None,
        }
    }

    /// The spec describing an existing [`ConjunctiveQuery`] under `ranking`
    /// (no predicates — structural queries carry their selections as
    /// repeated variables only).
    pub fn from_query(query: &ConjunctiveQuery, ranking: RankingFunction) -> Self {
        QuerySpec {
            atoms: query.atoms().to_vec(),
            free: query.head_variables(),
            predicates: Vec::new(),
            ranking,
            algorithm: None,
            limit: None,
            shards: None,
        }
    }

    /// Parse a spec from the textual query language; see [`crate::parse`]
    /// for the grammar.
    pub fn parse(text: &str) -> Result<Self, crate::parse::ParseError> {
        crate::parse::parse_query(text)
    }

    /// All distinct body variables in first-occurrence order (scanning atoms
    /// left to right, positions in order).
    pub fn variables(&self) -> Vec<String> {
        crate::atom::distinct_variables(&self.atoms)
    }

    /// Validate the spec's internal consistency: non-empty body, head
    /// variables bound and distinct, predicate variables bound.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.atoms.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        for (i, v) in self.free.iter().enumerate() {
            if !self.atoms.iter().any(|a| a.binds(v)) {
                return Err(QueryError::UnknownHeadVariable {
                    variable: v.clone(),
                });
            }
            if self.free[..i].contains(v) {
                return Err(QueryError::DuplicateHeadVariable {
                    variable: v.clone(),
                });
            }
        }
        for p in &self.predicates {
            if !self.atoms.iter().any(|a| a.binds(&p.variable)) {
                return Err(QueryError::UnknownPredicateVariable {
                    variable: p.variable.clone(),
                });
            }
        }
        Ok(())
    }

    /// The spec's [`ConjunctiveQuery`] (atoms + head; predicates, ranking,
    /// algorithm and limit are carried separately). Full when the head
    /// covers every body variable in first-occurrence order, a projection
    /// otherwise.
    pub fn to_query(&self) -> Result<ConjunctiveQuery, QueryError> {
        self.validate()?;
        if self.free == self.variables() {
            Ok(ConjunctiveQuery::full(self.atoms.clone()))
        } else {
            Ok(ConjunctiveQuery::with_projection(
                self.atoms.clone(),
                self.free.clone(),
            ))
        }
    }

    /// The canonical form: variables renamed to `v0, v1, …` in
    /// first-occurrence order, predicates sorted and deduplicated, atoms and
    /// head order preserved (both are semantic). Idempotent; two
    /// alpha-equivalent specs have equal canonical forms.
    pub fn canonical(&self) -> QuerySpec {
        let vars = self.variables();
        let rename: HashMap<&str, String> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), format!("v{i}")))
            .collect();
        let map = |v: &String| rename.get(v.as_str()).cloned().unwrap_or_else(|| v.clone());
        let atoms = self
            .atoms
            .iter()
            .map(|a| Atom {
                relation: a.relation.clone(),
                variables: a.variables.iter().map(map).collect(),
            })
            .collect();
        let free = self.free.iter().map(map).collect();
        let mut predicates: Vec<Predicate> = self
            .predicates
            .iter()
            .map(|p| Predicate {
                variable: map(&p.variable),
                constant: p.constant.clone(),
            })
            .collect();
        predicates.sort();
        predicates.dedup();
        QuerySpec {
            atoms,
            free,
            predicates,
            ranking: self.ranking,
            algorithm: self.algorithm,
            limit: self.limit,
            shards: self.shards,
        }
    }

    /// Render the spec as query-language text, exactly as stored (no
    /// renaming). `parse(to_text(s)) == s` for any valid spec.
    pub fn to_text(&self) -> String {
        let mut out = String::from("Q(");
        out.push_str(&self.free.join(", "));
        out.push_str(") :- ");
        let mut body: Vec<String> = self.atoms.iter().map(Atom::to_string).collect();
        body.extend(self.predicates.iter().map(Predicate::to_string));
        out.push_str(&body.join(", "));
        if let Some(clause) = self.ranking.spec_clause() {
            out.push_str(" rank by ");
            out.push_str(clause);
        }
        if let Some(algorithm) = self.algorithm {
            out.push_str(" via ");
            out.push_str(algorithm_token(algorithm));
        }
        if let Some(limit) = self.limit {
            out.push_str(&format!(" limit {limit}"));
        }
        if let Some(shards) = self.shards {
            out.push_str(&format!(" shards {shards}"));
        }
        out
    }

    /// The canonical text: `self.canonical().to_text()`. This is the
    /// pretty-printer whose output parsing inverts — for any valid spec `s`,
    /// `parse(s.canonical_text()) == s.canonical()`.
    pub fn canonical_text(&self) -> String {
        self.canonical().to_text()
    }

    /// The plan-cache key: the canonical text with the execution attributes
    /// (algorithm, limit) stripped. Two requests with this key in common can
    /// share one compiled, preprocessed plan — they differ at most in how
    /// the shared plan is enumerated.
    pub fn plan_key(&self) -> String {
        self.without_execution_attrs().canonical_text()
    }

    /// A copy with the execution attributes (algorithm, limit, shards)
    /// cleared — the part of the request that determines the compiled plan.
    pub fn without_execution_attrs(&self) -> QuerySpec {
        QuerySpec {
            algorithm: None,
            limit: None,
            shards: None,
            ..self.clone()
        }
    }
}

/// Displays the canonical text (the pretty-printer of the query language).
impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path2_spec() -> QuerySpec {
        QuerySpec::new(
            vec![Atom::new("R", &["x", "y"]), Atom::new("S", &["y", "z"])],
            vec!["x".into(), "y".into(), "z".into()],
        )
    }

    #[test]
    fn canonical_renames_in_first_occurrence_order() {
        let s = QuerySpec::new(
            vec![Atom::new("R", &["b", "a"]), Atom::new("S", &["a", "c"])],
            vec!["b".into(), "c".into()],
        );
        let c = s.canonical();
        assert_eq!(c.atoms[0].variables, vec!["v0", "v1"]);
        assert_eq!(c.atoms[1].variables, vec!["v1", "v2"]);
        assert_eq!(c.free, vec!["v0", "v2"]);
        assert_eq!(c.canonical(), c, "idempotent");
    }

    #[test]
    fn alpha_equivalent_specs_share_plan_keys() {
        let a = path2_spec();
        let mut b = QuerySpec::new(
            vec![Atom::new("R", &["p", "q"]), Atom::new("S", &["q", "r"])],
            vec!["p".into(), "q".into(), "r".into()],
        );
        b.limit = Some(10);
        b.algorithm = Some(AnyKAlgorithm::Lazy);
        assert_eq!(a.plan_key(), b.plan_key(), "limit/algorithm are stripped");
        assert_ne!(a.canonical_text(), b.canonical_text());
    }

    #[test]
    fn printer_renders_every_clause() {
        let mut s = path2_spec();
        s.predicates.push(Predicate::int("y", 7));
        s.ranking = RankingFunction::SumDescending;
        s.algorithm = Some(AnyKAlgorithm::Take2);
        s.limit = Some(1000);
        s.shards = Some(4);
        assert_eq!(
            s.to_text(),
            "Q(x, y, z) :- R(x, y), S(y, z), y = 7 rank by sum desc via take2 limit 1000 shards 4"
        );
    }

    #[test]
    fn string_constants_are_quoted_and_escaped() {
        let p = Predicate::text("x", "a\"b\\c");
        assert_eq!(p.to_string(), "x = \"a\\\"b\\\\c\"");
    }

    #[test]
    fn validation_catches_bad_heads_and_predicates() {
        let mut s = path2_spec();
        s.free.push("nope".into());
        assert!(matches!(
            s.validate(),
            Err(QueryError::UnknownHeadVariable { .. })
        ));
        let mut s = path2_spec();
        s.free.push("x".into());
        assert!(matches!(
            s.validate(),
            Err(QueryError::DuplicateHeadVariable { .. })
        ));
        let mut s = path2_spec();
        s.predicates.push(Predicate::int("nope", 1));
        assert!(matches!(
            s.validate(),
            Err(QueryError::UnknownPredicateVariable { .. })
        ));
        assert!(matches!(
            QuerySpec::new(vec![], vec![]).validate(),
            Err(QueryError::EmptyBody)
        ));
    }

    #[test]
    fn to_query_builds_full_or_projected() {
        let full = path2_spec().to_query().unwrap();
        assert!(full.is_full());
        let mut s = path2_spec();
        s.free = vec!["x".into(), "z".into()];
        let projected = s.to_query().unwrap();
        assert!(!projected.is_full());
        assert_eq!(projected.head_variables(), vec!["x", "z"]);
    }

    #[test]
    fn from_query_round_trips_atoms_and_head() {
        let q = path2_spec().to_query().unwrap();
        let s = QuerySpec::from_query(&q, RankingFunction::BottleneckAscending);
        assert_eq!(s.atoms, path2_spec().atoms);
        assert_eq!(s.free, vec!["x", "y", "z"]);
        assert_eq!(s.ranking, RankingFunction::BottleneckAscending);
    }

    #[test]
    fn algorithm_tokens_round_trip() {
        for a in AnyKAlgorithm::ALL {
            assert_eq!(algorithm_from_token(algorithm_token(a)), Some(a));
        }
        assert_eq!(algorithm_from_token("quantum"), None);
    }
}
