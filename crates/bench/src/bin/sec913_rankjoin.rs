//! Harness binary: Sec. 9.1.3: rank-join blow-up on database I2
//! Run with: `cargo run --release -p anyk-bench --bin sec913_rankjoin`
//! Set `ANYK_SCALE=quick|default|paper` to control the input sizes.

fn main() {
    let scale = anyk_bench::Scale::from_env();
    anyk_bench::experiments::sec913::run(scale);
}
