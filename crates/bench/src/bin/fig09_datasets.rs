//! Harness binary: Fig. 9 dataset statistics
//! Run with: `cargo run --release -p anyk-bench --bin fig09_datasets`
//! Set `ANYK_SCALE=quick|default|paper` to control the input sizes.

fn main() {
    let scale = anyk_bench::Scale::from_env();
    anyk_bench::experiments::fig09::run(scale);
}
