//! Harness binary: Fig. 13: cycle queries of size 6
//! Run with: `cargo run --release -p anyk-bench --bin fig13_cycles`
//! Set `ANYK_SCALE=quick|default|paper` to control the input sizes.

fn main() {
    let scale = anyk_bench::Scale::from_env();
    anyk_bench::experiments::results_over_time::fig13(scale);
}
