//! Harness binary: Fig. 10: queries of size 4 (path/star/cycle) on all datasets
//! Run with: `cargo run --release -p anyk-bench --bin fig10_size4`
//! Set `ANYK_SCALE=quick|default|paper` to control the input sizes.

fn main() {
    let scale = anyk_bench::Scale::from_env();
    anyk_bench::experiments::results_over_time::fig10(scale);
}
