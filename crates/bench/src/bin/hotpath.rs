//! Hot-path microbenchmark for the CSR T-DP layout work: TTF / TT(k) for the
//! workload shapes whose candidate-expansion loops dominate wall-clock
//! (path-4, star-3, cycle-6, plus the string-keyed text-3 scenario whose
//! columns are dictionary-encoded usernames), across every any-k algorithm,
//! plus `prep_ms` (compile + bottom-up — the phase targeted by the
//! columnar/parallel preprocessing pipeline) and a MEM(k) snapshot per
//! anyK-part variant (candidate queue, shared-prefix arena,
//! successor-structure table). The text scenario must track the integer
//! scenarios closely: encoding happens at build time, so any enumeration gap
//! would indicate the dictionary layer leaking into the hot loops.
//!
//! Writes `BENCH_hotpath.json` (override with `ANYK_HOTPATH_OUT`) so the
//! perf trajectory of the enumeration hot loops is recorded in-repo. If
//! `ANYK_HOTPATH_BASELINE` names an existing JSON file (a previous run, e.g.
//! measured on the pre-refactor tree), its contents are embedded verbatim
//! under the `"baseline"` key for side-by-side comparison.
//!
//! Run with `ANYK_SCALE=quick` for a CI smoke pass (sub-second inputs); set
//! `ANYK_THREADS` to pin the bottom-up worker count (1 = serial sweep).

use anyk_bench::Scale;
use anyk_core::metrics::EnumerationTrace;
use anyk_core::AnyKAlgorithm;
use anyk_datagen::{cycles, rng, text, uniform};
use anyk_engine::RankedQuery;
use anyk_query::QueryBuilder;
use anyk_storage::Database;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Ranks at which TT(k) is reported.
const CHECKPOINTS: [usize; 4] = [1, 10, 100, 1000];
/// Enumeration is cut off after this many results: the hot loops are fully
/// exercised by then and full enumeration would dominate the run time.
const LIMIT: usize = 1000;
/// Timed repetitions per (workload, algorithm); the best run is reported
/// (standard practice for cache-sensitivity microbenchmarks).
const REPEATS: usize = 3;

/// The algorithms whose hot loops this benchmark tracks. `Batch` is excluded:
/// its time is all materialisation + sort (minutes on the worst-case cycle
/// input), not the candidate-expansion loops this file measures.
const ALGORITHMS: [AnyKAlgorithm; 5] = [
    AnyKAlgorithm::Recursive,
    AnyKAlgorithm::Take2,
    AnyKAlgorithm::Lazy,
    AnyKAlgorithm::Eager,
    AnyKAlgorithm::All,
];

struct Workload {
    name: &'static str,
    db: Database,
    query: anyk_query::ConjunctiveQuery,
}

fn workloads(scale: Scale) -> Vec<Workload> {
    let path_n = scale.pick(400, 50_000, 200_000);
    let star_n = scale.pick(400, 50_000, 200_000);
    let cycle_n = scale.pick(60, 1_000, 4_000);
    vec![
        Workload {
            name: "path4",
            db: uniform::path_or_star_database(4, path_n, &mut rng(11)),
            query: QueryBuilder::path(4).build(),
        },
        Workload {
            name: "star3",
            db: uniform::path_or_star_database(3, star_n, &mut rng(12)),
            query: QueryBuilder::star(3).build(),
        },
        Workload {
            name: "cycle6",
            db: cycles::worst_case_cycle_database(6, cycle_n, &mut rng(13)),
            query: QueryBuilder::cycle(6).build(),
        },
        Workload {
            name: "text3",
            db: text::text_social_database(
                3,
                text::TextSocialConfig {
                    users: scale.pick(200, 8_000, 40_000),
                    avg_degree: 4,
                },
                &mut rng(14),
            ),
            query: QueryBuilder::path(3).build(),
        },
    ]
}

fn ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.4}", d.as_secs_f64() * 1e3),
        None => "null".to_string(),
    }
}

fn main() {
    let scale = Scale::from_env();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(json, "  \"limit\": {LIMIT},");
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    // Record the worker count actually used by the bottom-up sweep — the
    // core's own resolution, as a number, never raw env text.
    let threads = anyk_core::tdp::default_bottom_up_threads();
    let _ = writeln!(json, "  \"anyk_threads\": {threads},");
    json.push_str("  \"workloads\": [\n");

    for (wi, w) in workloads(scale).iter().enumerate() {
        let tuples: usize = w
            .query
            .atoms()
            .iter()
            .map(|a| w.db.expect(&a.relation).len())
            .sum();
        println!("== {} ({} input tuples) ==", w.name, tuples);

        // Pre-processing (compile + bottom-up) is timed separately from
        // enumeration: the paper's TTF includes it, the TT(k) deltas do not.
        let prep_start = Instant::now();
        let prepared = RankedQuery::new(&w.db, &w.query).expect("plan");
        let prep = prep_start.elapsed();

        if wi > 0 {
            json.push_str(",\n");
        }
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"input_tuples\": {tuples},");
        let _ = writeln!(json, "      \"prep_ms\": {:.4},", prep.as_secs_f64() * 1e3);
        json.push_str("      \"algorithms\": [\n");

        for (ai, &alg) in ALGORITHMS.iter().enumerate() {
            let mut best: Option<EnumerationTrace> = None;
            let mut produced = 0usize;
            for _ in 0..REPEATS {
                let mut trace = EnumerationTrace::new();
                produced = 0;
                for _ in prepared.enumerate(alg) {
                    trace.record();
                    produced += 1;
                    if produced >= LIMIT {
                        break;
                    }
                }
                let better = match &best {
                    None => true,
                    Some(b) => trace.ttl() < b.ttl(),
                };
                if better {
                    best = Some(trace);
                }
            }
            let trace = best.expect("at least one repeat");
            println!(
                "  {:<10} ttf {:>12} tt(1000) {:>12} produced {}",
                alg.name(),
                ms(trace.ttf()),
                ms(trace.tt(1000)),
                produced
            );
            if ai > 0 {
                json.push_str(",\n");
            }
            let _ = write!(
                json,
                "        {{\"name\": \"{}\", \"ttf_ms\": {}, ",
                alg.name(),
                ms(trace.ttf())
            );
            let tt: Vec<String> = CHECKPOINTS
                .iter()
                .map(|&k| format!("\"{}\": {}", k, ms(trace.tt(k))))
                .collect();
            let _ = write!(json, "\"tt_ms\": {{{}}}, ", tt.join(", "));
            // MEM(k) snapshot after LIMIT results: successor-structure table
            // and prefix-arena sizes (null for non-anyK-part algorithms).
            match prepared.mem_profile(alg, LIMIT) {
                Some(m) => {
                    let _ = write!(
                        json,
                        "\"mem\": {{\"candidates\": {}, \"prefix_arena\": {}, \
                         \"succ_structures\": {}, \"succ_table_slots\": {}, \
                         \"succ_choices\": {}}}, ",
                        m.candidates,
                        m.prefix_arena_entries,
                        m.structures_allocated,
                        m.structure_table_slots,
                        m.structure_choices
                    );
                }
                None => {
                    let _ = write!(json, "\"mem\": null, ");
                }
            }
            let _ = write!(json, "\"produced\": {produced}}}");
        }
        json.push_str("\n      ]\n    }");
    }
    json.push_str("\n  ]");

    if let Ok(path) = std::env::var("ANYK_HOTPATH_BASELINE") {
        if let Ok(baseline) = std::fs::read_to_string(&path) {
            json.push_str(",\n  \"baseline\": ");
            // Indent the embedded document so the output stays readable.
            json.push_str(&baseline.trim_end().replace('\n', "\n  "));
        }
    }
    json.push_str("\n}\n");

    let out = std::env::var("ANYK_HOTPATH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".into());
    std::fs::write(&out, &json).expect("write bench output");
    println!("wrote {out}");
}
