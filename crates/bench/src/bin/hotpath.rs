//! Hot-path microbenchmark for the CSR T-DP layout work: TTF / TT(k) for the
//! workload shapes whose candidate-expansion loops dominate wall-clock
//! (path-4, star-3, cycle-6, plus the string-keyed text-3 scenario whose
//! columns are dictionary-encoded usernames), across every any-k algorithm,
//! plus `prep_ms` (compile + bottom-up — the phase targeted by the
//! columnar/parallel preprocessing pipeline) and a MEM(k) snapshot per
//! anyK-part variant (candidate queue, shared-prefix arena,
//! successor-structure table). The text scenario must track the integer
//! scenarios closely: encoding happens at build time, so any enumeration gap
//! would indicate the dictionary layer leaking into the hot loops.
//!
//! A `service` scenario additionally measures the query-service subsystem:
//! concurrent paged sessions (N sessions × path-4/star-3/text3, pages of
//! 100 answers) reporting p50/p99 page latency and aggregate pages/sec —
//! the serving-throughput counterpart to the per-algorithm TT(k) numbers.
//! An `overload` scenario then doubles the client count against a governor
//! capped at N sessions, reporting the admission controller's shed rate and
//! the p99 page latency admitted sessions see at 2× capacity.
//!
//! Two network scenarios put the same serving loops behind the TCP wire
//! transport (`anyk_server::net`): `net4` runs thousands of *sequential*
//! sessions over one real socket — its page latencies sit next to the
//! in-process `service` numbers, so the delta between the two sections is
//! the wire tax (frame encode/decode plus a localhost round-trip) — and
//! `net_overload` repeats the 2×-capacity experiment over real sockets,
//! where shed replies additionally ride the protocol's retry-after hint
//! back to the blocking client.
//!
//! A `delta4` scenario measures incremental maintenance: a ~0.1% edit batch
//! applied via `Database::apply_delta` + `PreparedQuery::refresh` (the
//! dirty-cone re-sweep behind `QueryService::ingest`) versus a full
//! recompile over the same post-edit data, reporting the refresh speedup.
//!
//! A `shard4` scenario sweeps the sharded-enumeration subsystem
//! (`anyk_engine::ShardedPreparedQuery`): preparation wall-clock versus
//! shard count ∈ {1, 2, 4, 8} on a path-4 instance 10× the default scale,
//! plus TTF / TT(k) of the k-way-merged stream — per-shard preprocessing
//! runs in parallel, so `prep_ms` should fall with the shard count (up to
//! the core count) while TT(k) stays within noise of one shard.
//!
//! An `obs` scenario prices the observability layer itself: TT(1000) on the
//! path-4 paged cursor with per-answer delay recording on versus off
//! (`anyk_obs::set_recording`), interleaved best-of-N so thermal drift hits
//! both sides equally. `overhead_pct` is the cost of leaving recording on —
//! the budget is a few percent. The `net4` scenario additionally scrapes the
//! server's Stats opcode after its run and embeds the per-plan delay
//! percentiles and the prep-phase breakdown (index build / compile /
//! bottom-up) the wire reported.
//!
//! Writes `BENCH_hotpath.json` (override with `ANYK_HOTPATH_OUT`) so the
//! perf trajectory of the enumeration hot loops is recorded in-repo. If
//! `ANYK_HOTPATH_BASELINE` names an existing JSON file (a previous run, e.g.
//! measured on the pre-refactor tree), its contents are embedded verbatim
//! under the `"baseline"` key for side-by-side comparison.
//!
//! Run with `ANYK_SCALE=quick` for a CI smoke pass (sub-second inputs); set
//! `ANYK_THREADS` to pin the bottom-up worker count (1 = serial sweep).

use anyk_bench::Scale;
use anyk_core::metrics::EnumerationTrace;
use anyk_core::AnyKAlgorithm;
use anyk_datagen::{cycles, rng, text, uniform};
use anyk_engine::{PreparedQuery, RankedQuery};
use anyk_query::{parse_query, QueryBuilder, QuerySpec, RankingFunction};
use anyk_server::net::{AnyKClient, AnyKServer, ClientConfig, NetConfig};
use anyk_server::{
    set_recording, GovernorConfig, HistogramSummary, Phase, PlanSummaries, QueryService,
    ServiceConfig, ServiceError,
};
use anyk_storage::{Database, DeltaBatch, Tuple};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Ranks at which TT(k) is reported.
const CHECKPOINTS: [usize; 4] = [1, 10, 100, 1000];
/// Enumeration is cut off after this many results: the hot loops are fully
/// exercised by then and full enumeration would dominate the run time.
const LIMIT: usize = 1000;
/// Timed repetitions per (workload, algorithm); the best run is reported
/// (standard practice for cache-sensitivity microbenchmarks).
const REPEATS: usize = 3;

/// The algorithms whose hot loops this benchmark tracks. `Batch` is excluded:
/// its time is all materialisation + sort (minutes on the worst-case cycle
/// input), not the candidate-expansion loops this file measures.
const ALGORITHMS: [AnyKAlgorithm; 5] = [
    AnyKAlgorithm::Recursive,
    AnyKAlgorithm::Take2,
    AnyKAlgorithm::Lazy,
    AnyKAlgorithm::Eager,
    AnyKAlgorithm::All,
];

struct Workload {
    name: &'static str,
    db: Database,
    /// The request, as a `QuerySpec` — every workload now goes through the
    /// textual request API's plan path (`RankedQuery::from_spec`), so this
    /// benchmark also guards the spec/pushdown layer's overhead.
    spec: QuerySpec,
}

fn workloads(scale: Scale) -> Vec<Workload> {
    let path_n = scale.pick(400, 50_000, 200_000);
    let star_n = scale.pick(400, 50_000, 200_000);
    let cycle_n = scale.pick(60, 1_000, 4_000);
    let path_db = uniform::path_or_star_database(4, path_n, &mut rng(11));
    vec![
        Workload {
            name: "path4",
            db: path_db.clone(),
            spec: QuerySpec::from_query(
                &QueryBuilder::path(4).build(),
                RankingFunction::SumAscending,
            ),
        },
        // The selection-pushdown hot path: path-4 with a selective equality
        // predicate on the middle join variable (`x3 = 7` keeps ~1/domain of
        // R2/R3). `prep_ms` covers the filtered-copy pass + compilation over
        // the reduced input.
        Workload {
            name: "filter4",
            db: path_db,
            spec: parse_query(
                "Q(x1, x2, x3, x4, x5) :- R1(x1, x2), R2(x2, x3), R3(x3, x4), R4(x4, x5), \
                 x3 = 7",
            )
            .expect("filter4 request parses"),
        },
        Workload {
            name: "star3",
            db: uniform::path_or_star_database(3, star_n, &mut rng(12)),
            spec: QuerySpec::from_query(
                &QueryBuilder::star(3).build(),
                RankingFunction::SumAscending,
            ),
        },
        Workload {
            name: "cycle6",
            db: cycles::worst_case_cycle_database(6, cycle_n, &mut rng(13)),
            spec: QuerySpec::from_query(
                &QueryBuilder::cycle(6).build(),
                RankingFunction::SumAscending,
            ),
        },
        Workload {
            name: "text3",
            db: text::text_social_database(
                3,
                text::TextSocialConfig {
                    users: scale.pick(200, 8_000, 40_000),
                    avg_degree: 4,
                },
                &mut rng(14),
            ),
            spec: QuerySpec::from_query(
                &QueryBuilder::path(3).build(),
                RankingFunction::SumAscending,
            ),
        },
    ]
}

fn ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.4}", d.as_secs_f64() * 1e3),
        None => "null".to_string(),
    }
}

/// Concurrent sessions per service scenario.
const SERVICE_SESSIONS: usize = 8;
/// Answers per page in the service scenario.
const SERVICE_PAGE_SIZE: usize = 100;

struct ServiceRun {
    pages: usize,
    answers: usize,
    pages_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// Run `SERVICE_SESSIONS` concurrent sessions over `w`, each pulling pages
/// of `SERVICE_PAGE_SIZE` until `LIMIT` answers (or exhaustion), and report
/// aggregate paging throughput and page-latency percentiles. The plan is
/// prepared once up front (shared by all sessions via the service's plan
/// cache), so the measured latencies are pure enumeration + service
/// overhead — the steady-state serving cost.
fn run_service(w: &Workload) -> ServiceRun {
    let service = QueryService::new(w.db.clone());
    service.prepare_spec(&w.spec).expect("plan");
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SERVICE_SESSIONS)
            .map(|_| {
                let service = &service;
                let spec = &w.spec;
                scope.spawn(move || {
                    let id = service.open_session_spec(spec).unwrap();
                    let mut lat = Vec::new();
                    let mut buf = Vec::with_capacity(SERVICE_PAGE_SIZE);
                    let mut served = 0usize;
                    loop {
                        let t = Instant::now();
                        let done = service
                            .next_page_into(id, SERVICE_PAGE_SIZE, &mut buf)
                            .unwrap();
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        served += buf.len();
                        if done || served >= LIMIT {
                            break;
                        }
                    }
                    service.close_session(id);
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("session thread"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let metrics = service.metrics();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ServiceRun {
        pages: latencies.len(),
        answers: metrics.answers_served as usize,
        pages_per_sec: latencies.len() as f64 / wall,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
    }
}

struct OverloadRun {
    clients: usize,
    session_cap: usize,
    opens: u64,
    sheds: u64,
    shed_rate: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Answers each overload client pulls. Larger than the service scenario's
/// `LIMIT`: session open (cursor construction) costs real CPU, so sessions
/// must live long enough relative to opens for 2× clients to actually
/// overlap at the admission controller instead of draining in sequence.
const OVERLOAD_ANSWERS: usize = 5 * LIMIT;

/// Overload scenario: `2 × SERVICE_SESSIONS` clients hammer a service whose
/// governor caps concurrent sessions at `SERVICE_SESSIONS`. Clients retry
/// shed opens after the service's own `retry_after_hint`, so the measured
/// numbers are the steady-state behaviour a well-behaved client sees at 2×
/// capacity: what fraction of open attempts the admission controller sheds,
/// and what paging latency admitted sessions get while the cap keeps the
/// box from overcommitting.
fn run_overload(w: &Workload) -> OverloadRun {
    let session_cap = SERVICE_SESSIONS;
    let clients = 2 * session_cap;
    let service = QueryService::with_config(
        w.db.clone(),
        ServiceConfig {
            governor: GovernorConfig {
                max_sessions: Some(session_cap),
                retry_after_hint: Duration::from_micros(200),
                ..GovernorConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    service.prepare_spec(&w.spec).expect("plan");
    // All clients arrive at once: without the barrier, fast workloads let
    // early sessions drain before late threads even spawn, and the
    // admission controller never sees 2× pressure.
    let start_line = std::sync::Barrier::new(clients);
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let service = &service;
                let spec = &w.spec;
                let start_line = &start_line;
                scope.spawn(move || {
                    start_line.wait();
                    let id = loop {
                        match service.open_session_spec(spec) {
                            Ok(id) => break id,
                            Err(ServiceError::Overloaded {
                                retry_after_hint, ..
                            }) => std::thread::sleep(retry_after_hint),
                            Err(other) => panic!("unexpected open error: {other}"),
                        }
                    };
                    let mut lat = Vec::new();
                    let mut buf = Vec::with_capacity(SERVICE_PAGE_SIZE);
                    let mut served = 0usize;
                    loop {
                        let t = Instant::now();
                        let done = service
                            .next_page_into(id, SERVICE_PAGE_SIZE, &mut buf)
                            .unwrap();
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        served += buf.len();
                        if done || served >= OVERLOAD_ANSWERS {
                            break;
                        }
                    }
                    service.close_session(id);
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let metrics = service.metrics();
    assert_eq!(metrics.active_sessions, 0, "all overload clients finished");
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let attempts = metrics.sessions_opened + metrics.sessions_shed;
    OverloadRun {
        clients,
        session_cap,
        opens: metrics.sessions_opened,
        sheds: metrics.sessions_shed,
        shed_rate: metrics.sessions_shed as f64 / attempts as f64,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
    }
}

struct NetRun {
    sessions: usize,
    pages: usize,
    answers: usize,
    sessions_per_sec: f64,
    pages_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// The workload plan's TTF/delay/page distributions as the server's
    /// Stats opcode reported them after the run — the wire-scraped
    /// counterpart to the client-side latencies above.
    plan_stats: PlanSummaries,
    /// Process-wide prep-phase accumulators from the same scrape:
    /// `(phase name, fire count, total ms)` for the preprocessing pipeline.
    /// Cumulative across every scenario the bench ran before this one.
    prep_phases: Vec<(&'static str, u64, f64)>,
}

/// `net4`: the wire-transport counterpart to the `service` scenario. One
/// blocking client runs thousands of sequential sessions against an
/// [`AnyKServer`] on an ephemeral localhost port, each session streaming
/// `LIMIT` answers in `SERVICE_PAGE_SIZE` pages. Enumeration cost is
/// identical to the in-process path (same plan cache, same cursors), so the
/// per-page latency delta versus `service` is pure wire tax: frame
/// encode/decode plus a localhost TCP round-trip. Session churn (open +
/// close round-trips per session) lands in `sessions_per_sec` instead of
/// the page percentiles.
fn run_net(w: &Workload, scale: Scale) -> NetRun {
    let sessions = scale.pick(40, 2_000, 10_000);
    let service = Arc::new(QueryService::new(w.db.clone()));
    service.prepare_spec(&w.spec).expect("plan");
    let mut server = AnyKServer::bind(
        Arc::clone(&service),
        ("127.0.0.1", 0),
        NetConfig {
            // One sequential client: a single worker owns its connection.
            workers: 1,
            max_connections: 4,
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let text = w.spec.canonical_text();
    let mut client = AnyKClient::connect(server.local_addr(), ClientConfig::default());
    let mut latencies: Vec<f64> = Vec::new();
    let mut answers = 0usize;
    let start = Instant::now();
    for _ in 0..sessions {
        let session = client.open_session(&text).expect("open over tcp");
        let mut served = 0usize;
        loop {
            let t = Instant::now();
            let page = client
                .next_page(session, SERVICE_PAGE_SIZE)
                .expect("page over tcp");
            latencies.push(t.elapsed().as_secs_f64() * 1e3);
            served += page.answers.len();
            answers += page.answers.len();
            if page.done || served >= LIMIT {
                break;
            }
        }
        client.close(session).expect("close over tcp");
    }
    let wall = start.elapsed().as_secs_f64();
    // One Stats round-trip before shutdown: the scrape every dashboard
    // would make, here doubling as bench output.
    let stats = client.stats().expect("stats over tcp");
    server.shutdown();
    let key = w.spec.plan_key();
    let plan_stats = stats
        .plans
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, s)| *s)
        .expect("the benched plan has distributions");
    let prep_phases = [Phase::IndexBuild, Phase::Compile, Phase::BottomUp]
        .into_iter()
        .map(|p| {
            let s = stats.phases.iter().find(|s| s.phase == p);
            (
                p.name(),
                s.map_or(0, |s| s.count),
                s.map_or(0.0, |s| s.total_nanos as f64 / 1e6),
            )
        })
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    NetRun {
        sessions,
        pages: latencies.len(),
        answers,
        sessions_per_sec: sessions as f64 / wall,
        pages_per_sec: latencies.len() as f64 / wall,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        plan_stats,
        prep_phases,
    }
}

/// `net_overload`: the 2×-capacity overload experiment over real sockets.
/// Same governor cap as [`run_overload`], but every shed now travels the
/// wire as an `Overloaded` frame whose retry-after hint the blocking client
/// honours inside `open_session` — so the measured shed rate and admitted
/// page latency are what a remote, well-behaved client sees.
fn run_net_overload(w: &Workload) -> OverloadRun {
    let session_cap = SERVICE_SESSIONS;
    let clients = 2 * session_cap;
    let service = Arc::new(QueryService::with_config(
        w.db.clone(),
        ServiceConfig {
            governor: GovernorConfig {
                max_sessions: Some(session_cap),
                retry_after_hint: Duration::from_micros(200),
                ..GovernorConfig::default()
            },
            ..ServiceConfig::default()
        },
    ));
    service.prepare_spec(&w.spec).expect("plan");
    let mut server = AnyKServer::bind(
        Arc::clone(&service),
        ("127.0.0.1", 0),
        NetConfig {
            // Every client must be served concurrently: a worker owns its
            // connection until disconnect, so the pool matches the crowd.
            workers: clients,
            max_connections: 2 * clients,
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let text = w.spec.canonical_text();
    let start_line = std::sync::Barrier::new(clients);
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let text = &text;
                let start_line = &start_line;
                scope.spawn(move || {
                    // Session sheds ride the governor's 200µs retry-after
                    // hint; a matching backoff floor keeps the hint, not the
                    // client's own schedule, in charge of the retry cadence.
                    let mut client = AnyKClient::connect(
                        addr,
                        ClientConfig {
                            initial_backoff: Duration::from_micros(200),
                            max_backoff: Duration::from_millis(2),
                            max_retries: u32::MAX,
                            ..ClientConfig::default()
                        },
                    );
                    start_line.wait();
                    let session = client.open_session(text).expect("open survives shedding");
                    let mut lat = Vec::new();
                    let mut served = 0usize;
                    loop {
                        let t = Instant::now();
                        let page = client
                            .next_page(session, SERVICE_PAGE_SIZE)
                            .expect("page over tcp");
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        served += page.answers.len();
                        if page.done || served >= OVERLOAD_ANSWERS {
                            break;
                        }
                    }
                    client.close(session).expect("close over tcp");
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("net client thread"))
            .collect()
    });
    server.shutdown();
    let metrics = service.metrics();
    assert_eq!(
        metrics.active_sessions, 0,
        "all net overload clients finished"
    );
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let attempts = metrics.sessions_opened + metrics.sessions_shed;
    OverloadRun {
        clients,
        session_cap,
        opens: metrics.sessions_opened,
        sheds: metrics.sessions_shed,
        shed_rate: metrics.sessions_shed as f64 / attempts as f64,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
    }
}

struct DeltaRun {
    edits: usize,
    apply_ms: f64,
    refresh_ms: f64,
    rebuild_prep_ms: f64,
    speedup: f64,
}

/// `delta4`: delta maintenance vs full rebuild on the path-4 workload.
/// A ~0.1%-of-tuples batch (one delete + one insert per edit slot, spread
/// across all four relations) is applied to a prepared plan two ways: the
/// incremental path (`Database::apply_delta` + `PreparedQuery::refresh`,
/// which re-sweeps only the dirty cone of the bottom-up DP) and a full
/// recompile over the delta-applied database. `speedup` is rebuild prep
/// over total incremental time — the factor a serving ingest saves per
/// cached plan. Both paths are checked to stream identical top answers
/// before anything is reported.
fn run_delta(w: &Workload) -> DeltaRun {
    let base = Arc::new(w.db.clone());
    let prepared = PreparedQuery::from_spec_delta(Arc::clone(&base), &w.spec)
        .expect("delta-capable path-4 plan");
    let n = base.expect("R1").len();
    let domain = (n / 10).max(1) as u64;
    let edits_per_rel = (n / 1000).max(1);
    // Deterministic, duplicate-free edit schedule: evenly-strided deletes,
    // multiplicatively-scattered (but in-domain) inserts.
    let mut batch = DeltaBatch::new();
    for (ri, rel) in ["R1", "R2", "R3", "R4"].into_iter().enumerate() {
        for e in 0..edits_per_rel {
            let tid = (e * n) / edits_per_rel;
            let src = (tid as u64 * 7919 + ri as u64) % domain + 1;
            let dst = (tid as u64 * 6271 + ri as u64) % domain + 1;
            batch = batch
                .delete(rel, tid)
                .insert(rel, Tuple::new(vec![src, dst], (e % 97) as f64 + 0.5));
        }
    }

    let mut apply_best = f64::MAX;
    let mut refresh_best = f64::MAX;
    let mut rebuild_best = f64::MAX;
    let mut refreshed = None;
    let mut rebuilt = None;
    for _ in 0..REPEATS {
        let t = Instant::now();
        let new_db = base.apply_delta(&batch).expect("valid batch");
        apply_best = apply_best.min(t.elapsed().as_secs_f64() * 1e3);
        let new_db = Arc::new(new_db);

        let t = Instant::now();
        let r = prepared
            .refresh(Arc::clone(&new_db), &batch)
            .expect("path-4 plan is refreshable");
        refresh_best = refresh_best.min(t.elapsed().as_secs_f64() * 1e3);
        refreshed = Some(r);

        let t = Instant::now();
        let b = PreparedQuery::from_spec_delta(Arc::clone(&new_db), &w.spec)
            .expect("rebuild over delta-applied db");
        rebuild_best = rebuild_best.min(t.elapsed().as_secs_f64() * 1e3);
        rebuilt = Some(b);
    }
    let (refreshed, rebuilt) = (refreshed.expect("repeats"), rebuilt.expect("repeats"));
    // The differential guarantee, spot-checked at bench time: the refreshed
    // plan streams the same top-LIMIT ranked answers as the rebuild.
    let a: Vec<_> = refreshed
        .enumerate(AnyKAlgorithm::Take2)
        .take(LIMIT)
        .collect();
    let b: Vec<_> = rebuilt
        .enumerate(AnyKAlgorithm::Take2)
        .take(LIMIT)
        .collect();
    assert_eq!(a, b, "refresh diverged from rebuild");

    let incremental = apply_best + refresh_best;
    DeltaRun {
        edits: batch.edit_count(),
        apply_ms: apply_best,
        refresh_ms: refresh_best,
        rebuild_prep_ms: rebuild_best,
        speedup: rebuild_best / incremental,
    }
}

struct ObsRun {
    on_ms: f64,
    off_ms: f64,
    overhead_pct: f64,
    ttf_ns: u64,
    delay: HistogramSummary,
}

/// Interleaved repetitions per recording state in the `obs` scenario (far
/// more than [`REPEATS`]: the measured effect is a few percent — smaller
/// than run-to-run scheduler noise — so both best-ofs need a deep pool to
/// converge on their true floors).
const OBS_REPEATS: usize = 25;

/// `obs`: the price of leaving per-answer delay recording on. TT(`LIMIT`)
/// through the paged cursor — the path that carries a [`DelayRecorder`]
/// (one monotonic-clock read per answer into a local log-bucketed
/// histogram) — measured with the process-wide switch on versus off,
/// interleaved so drift hits both sides equally. The "on" side's best run
/// also reports the delay distribution it recorded: the observability
/// layer measuring its own overhead run.
///
/// [`DelayRecorder`]: anyk_obs::DelayRecorder
fn run_obs(w: &Workload) -> ObsRun {
    let prepared =
        Arc::new(PreparedQuery::from_spec(Arc::new(w.db.clone()), &w.spec).expect("plan"));
    let tt_limit = || {
        let mut cursor = prepared.cursor(AnyKAlgorithm::Take2);
        let mut buf = Vec::with_capacity(SERVICE_PAGE_SIZE);
        let t = Instant::now();
        let mut served = 0usize;
        loop {
            let done = cursor.next_page_into(SERVICE_PAGE_SIZE, &mut buf);
            served += buf.len();
            if done || served >= LIMIT {
                break;
            }
        }
        let elapsed = t.elapsed().as_secs_f64() * 1e3;
        let recorded = cursor
            .ttf_nanos()
            .zip(cursor.delay_histogram().map(|h| h.summary()));
        (elapsed, recorded)
    };
    let mut on_best = f64::MAX;
    let mut off_best = f64::MAX;
    let mut best_recorded = None;
    for _ in 0..OBS_REPEATS {
        set_recording(true);
        let (elapsed, recorded) = tt_limit();
        if elapsed < on_best {
            on_best = elapsed;
            best_recorded = recorded;
        }
        set_recording(false);
        let (elapsed, _) = tt_limit();
        off_best = off_best.min(elapsed);
    }
    set_recording(true);
    let (ttf_ns, delay) = best_recorded.expect("recording was on");
    ObsRun {
        on_ms: on_best,
        off_ms: off_best,
        overhead_pct: (on_best - off_best) / off_best * 100.0,
        ttf_ns,
        delay,
    }
}

struct ShardRun {
    shards: usize,
    prep_ms: f64,
    /// Rendered via [`ms`] ("null" when the stream was empty/short).
    ttf_ms: String,
    tt1000_ms: String,
}

/// Shard counts the `shard4` scenario sweeps. 1 is the baseline (a
/// single-shard `ShardedPreparedQuery`, so the sweep isolates partitioning
/// + parallel prep from the merge machinery's fixed cost).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// `shard4`: hash-partitioned preprocessing vs shard count on a path-4
/// instance 10× the default per-workload scale — large enough that the
/// bottom-up sweep, not compilation, dominates `prep_ms`. For each shard
/// count the scenario reports the best-of-[`REPEATS`] preparation wall
/// clock (partition + per-shard T-DP, shards prepared in parallel) and the
/// TTF / TT([`LIMIT`]) of the merged stream (Take2, pages of 1, so every
/// answer crosses the k-way merge heap). On a box with ≥ 4 cores `prep_ms`
/// should drop near-linearly while TT(k) stays within noise; on smaller
/// boxes the serial partition pass and the per-shard fixed costs have no
/// spare cores to hide behind, so the curve flattens or even rises — the
/// recorded numbers say which.
fn run_shard(spec: &QuerySpec, db: &Arc<Database>) -> Vec<ShardRun> {
    use anyk_engine::{PrepareOptions, ShardedPreparedQuery};
    let mut runs = Vec::new();
    for &shards in &SHARD_COUNTS {
        let mut prep_best = f64::MAX;
        let mut best: Option<EnumerationTrace> = None;
        for _ in 0..REPEATS {
            let t = Instant::now();
            let prepared = Arc::new(
                ShardedPreparedQuery::from_spec(
                    Arc::clone(db),
                    spec,
                    shards,
                    PrepareOptions::default(),
                )
                .expect("path-4 shards on a join variable"),
            );
            prep_best = prep_best.min(t.elapsed().as_secs_f64() * 1e3);

            let mut cursor = prepared.cursor(AnyKAlgorithm::Take2);
            let mut trace = EnumerationTrace::new();
            let mut served = 0usize;
            loop {
                let page = cursor.next_page(1);
                for _ in 0..page.answers.len() {
                    trace.record();
                }
                served += page.answers.len();
                if page.done || served >= LIMIT {
                    break;
                }
            }
            let better = match &best {
                None => true,
                Some(b) => trace.ttl() < b.ttl(),
            };
            if better {
                best = Some(trace);
            }
        }
        let trace = best.expect("at least one repeat");
        runs.push(ShardRun {
            shards,
            prep_ms: prep_best,
            ttf_ms: ms(trace.ttf()),
            tt1000_ms: ms(trace.tt(LIMIT).or_else(|| trace.ttl())),
        });
    }
    runs
}

fn main() {
    let scale = Scale::from_env();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(json, "  \"limit\": {LIMIT},");
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    // Record the worker count actually used by the bottom-up sweep — the
    // core's own resolution, as a number, never raw env text.
    let threads = anyk_core::tdp::default_bottom_up_threads();
    let _ = writeln!(json, "  \"anyk_threads\": {threads},");
    json.push_str("  \"workloads\": [\n");

    let all_workloads = workloads(scale);
    for (wi, w) in all_workloads.iter().enumerate() {
        let tuples: usize = w
            .spec
            .atoms
            .iter()
            .map(|a| w.db.expect(&a.relation).len())
            .sum();
        println!("== {} ({} input tuples) ==", w.name, tuples);

        // Pre-processing (selection pushdown + compile + bottom-up) is timed
        // separately from enumeration: the paper's TTF includes it, the
        // TT(k) deltas do not.
        let prep_start = Instant::now();
        let prepared = RankedQuery::from_spec(&w.db, &w.spec).expect("plan");
        let prep = prep_start.elapsed();

        if wi > 0 {
            json.push_str(",\n");
        }
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"input_tuples\": {tuples},");
        let _ = writeln!(json, "      \"prep_ms\": {:.4},", prep.as_secs_f64() * 1e3);
        json.push_str("      \"algorithms\": [\n");

        for (ai, &alg) in ALGORITHMS.iter().enumerate() {
            let mut best: Option<EnumerationTrace> = None;
            let mut produced = 0usize;
            for _ in 0..REPEATS {
                let mut trace = EnumerationTrace::new();
                produced = 0;
                for _ in prepared.enumerate(alg) {
                    trace.record();
                    produced += 1;
                    if produced >= LIMIT {
                        break;
                    }
                }
                let better = match &best {
                    None => true,
                    Some(b) => trace.ttl() < b.ttl(),
                };
                if better {
                    best = Some(trace);
                }
            }
            let trace = best.expect("at least one repeat");
            println!(
                "  {:<10} ttf {:>12} tt(1000) {:>12} produced {}",
                alg.name(),
                ms(trace.ttf()),
                ms(trace.tt(1000)),
                produced
            );
            if ai > 0 {
                json.push_str(",\n");
            }
            let _ = write!(
                json,
                "        {{\"name\": \"{}\", \"ttf_ms\": {}, ",
                alg.name(),
                ms(trace.ttf())
            );
            let tt: Vec<String> = CHECKPOINTS
                .iter()
                .map(|&k| format!("\"{}\": {}", k, ms(trace.tt(k))))
                .collect();
            let _ = write!(json, "\"tt_ms\": {{{}}}, ", tt.join(", "));
            // Per-answer delay percentiles through the shared log-bucketed
            // histogram (`anyk_obs`) — the same bucket math the service's
            // Stats opcode reports, so bench and production percentiles are
            // directly comparable.
            let delay = trace.delay_histogram().summary();
            let _ = write!(
                json,
                "\"delay_ns\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}, ",
                delay.p50, delay.p90, delay.p99, delay.max
            );
            // MEM(k) snapshot after LIMIT results: successor-structure table
            // and prefix-arena sizes (null for non-anyK-part algorithms).
            match prepared.mem_profile(alg, LIMIT) {
                Some(m) => {
                    let _ = write!(
                        json,
                        "\"mem\": {{\"candidates\": {}, \"prefix_arena\": {}, \
                         \"succ_structures\": {}, \"succ_table_slots\": {}, \
                         \"succ_choices\": {}}}, ",
                        m.candidates,
                        m.prefix_arena_entries,
                        m.structures_allocated,
                        m.structure_table_slots,
                        m.structure_choices
                    );
                }
                None => {
                    let _ = write!(json, "\"mem\": null, ");
                }
            }
            let _ = write!(json, "\"produced\": {produced}}}");
        }
        json.push_str("\n      ]\n    }");
    }
    json.push_str("\n  ]");

    // Service scenario: concurrent paged sessions over the non-cycle
    // workloads (cycle-6's worst-case input makes the first page all TTF,
    // which the per-algorithm section already reports).
    println!("== service ({SERVICE_SESSIONS} sessions, pages of {SERVICE_PAGE_SIZE}) ==");
    json.push_str(",\n  \"service\": {\n");
    let _ = writeln!(json, "    \"sessions\": {SERVICE_SESSIONS},");
    let _ = writeln!(json, "    \"page_size\": {SERVICE_PAGE_SIZE},");
    json.push_str("    \"algorithm\": \"Take2\",\n    \"scenarios\": [\n");
    let service_workloads: Vec<&Workload> = all_workloads
        .iter()
        .filter(|w| w.name != "cycle6")
        .collect();
    for (si, w) in service_workloads.iter().enumerate() {
        let run = run_service(w);
        println!(
            "  {:<10} {:>9.1} pages/sec  p50 {:>8.4}ms  p99 {:>8.4}ms  ({} pages, {} answers)",
            w.name, run.pages_per_sec, run.p50_ms, run.p99_ms, run.pages, run.answers
        );
        if si > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "      {{\"name\": \"{}\", \"pages\": {}, \"answers\": {}, \
             \"pages_per_sec\": {:.1}, \"page_p50_ms\": {:.4}, \"page_p99_ms\": {:.4}}}",
            w.name, run.pages, run.answers, run.pages_per_sec, run.p50_ms, run.p99_ms
        );
    }
    json.push_str("\n    ]\n  }");

    // Overload scenario: the admission controller at 2× its session cap.
    // One workload suffices — shedding is a property of the governor, not
    // the join shape; path-4 is the steadiest enumerator of the set.
    let overload_workload = service_workloads
        .first()
        .expect("at least one service workload");
    let run = run_overload(overload_workload);
    println!(
        "== overload ({} clients vs cap {}) ==",
        run.clients, run.session_cap
    );
    println!(
        "  {:<10} shed_rate {:>6.3} ({} sheds / {} opens)  p50 {:>8.4}ms  p99 {:>8.4}ms",
        overload_workload.name, run.shed_rate, run.sheds, run.opens, run.p50_ms, run.p99_ms
    );
    json.push_str(",\n  \"overload\": {\n");
    let _ = writeln!(json, "    \"workload\": \"{}\",", overload_workload.name);
    let _ = writeln!(json, "    \"clients\": {},", run.clients);
    let _ = writeln!(json, "    \"session_cap\": {},", run.session_cap);
    let _ = writeln!(json, "    \"opens\": {},", run.opens);
    let _ = writeln!(json, "    \"sheds\": {},", run.sheds);
    let _ = writeln!(json, "    \"shed_rate\": {:.4},", run.shed_rate);
    let _ = writeln!(json, "    \"page_p50_ms\": {:.4},", run.p50_ms);
    let _ = writeln!(json, "    \"page_p99_ms\": {:.4}", run.p99_ms);
    json.push_str("  }");

    // Net scenario: the same serving loops behind the TCP wire transport.
    // Reuses the overload workload (path-4) so "service p50 vs net4 p50" is
    // an apples-to-apples read of the wire tax.
    let net_workload = *service_workloads
        .first()
        .expect("at least one service workload");
    let net = run_net(net_workload, scale);
    println!(
        "== net4 ({} sequential TCP sessions, pages of {SERVICE_PAGE_SIZE}) ==",
        net.sessions
    );
    println!(
        "  {:<10} {:>8.1} sessions/sec  {:>9.1} pages/sec  p50 {:>8.4}ms  p99 {:>8.4}ms",
        net_workload.name, net.sessions_per_sec, net.pages_per_sec, net.p50_ms, net.p99_ms
    );
    json.push_str(",\n  \"net4\": {\n");
    let _ = writeln!(json, "    \"workload\": \"{}\",", net_workload.name);
    let _ = writeln!(json, "    \"sessions\": {},", net.sessions);
    let _ = writeln!(json, "    \"page_size\": {SERVICE_PAGE_SIZE},");
    let _ = writeln!(json, "    \"pages\": {},", net.pages);
    let _ = writeln!(json, "    \"answers\": {},", net.answers);
    let _ = writeln!(
        json,
        "    \"sessions_per_sec\": {:.1},",
        net.sessions_per_sec
    );
    let _ = writeln!(json, "    \"pages_per_sec\": {:.1},", net.pages_per_sec);
    let _ = writeln!(json, "    \"page_p50_ms\": {:.4},", net.p50_ms);
    let _ = writeln!(json, "    \"page_p99_ms\": {:.4},", net.p99_ms);
    // What the server's Stats opcode said about the same run: per-plan
    // delay/TTF percentiles (nanoseconds) and the prep-phase breakdown
    // (process-wide accumulators, cumulative over the scenarios above).
    println!(
        "  stats scrape: ttf_p50 {}ns  delay p50 {}ns p99 {}ns  ({} delays recorded)",
        net.plan_stats.ttf.p50,
        net.plan_stats.delay.p50,
        net.plan_stats.delay.p99,
        net.plan_stats.delay.count
    );
    for (name, count, total_ms) in &net.prep_phases {
        println!("  phase {name:<12} count {count:>6}  total {total_ms:>10.3}ms");
    }
    json.push_str("    \"stats\": {\n");
    let _ = writeln!(
        json,
        "      \"plan_ttf_p50_ns\": {},",
        net.plan_stats.ttf.p50
    );
    let _ = writeln!(
        json,
        "      \"plan_delay_p50_ns\": {},",
        net.plan_stats.delay.p50
    );
    let _ = writeln!(
        json,
        "      \"plan_delay_p99_ns\": {},",
        net.plan_stats.delay.p99
    );
    let _ = writeln!(
        json,
        "      \"plan_delay_count\": {},",
        net.plan_stats.delay.count
    );
    json.push_str("      \"prep_phase_ms\": {");
    for (pi, (name, _, total_ms)) in net.prep_phases.iter().enumerate() {
        if pi > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{name}\": {total_ms:.3}");
    }
    json.push_str("}\n    }\n  }");

    // Net overload scenario: shedding measured from the far side of the
    // socket — shed rate should match the in-process overload run, page
    // latency carries the additional round-trip.
    let net_over = run_net_overload(net_workload);
    println!(
        "== net_overload ({} TCP clients vs cap {}) ==",
        net_over.clients, net_over.session_cap
    );
    println!(
        "  {:<10} shed_rate {:>6.3} ({} sheds / {} opens)  p50 {:>8.4}ms  p99 {:>8.4}ms",
        net_workload.name,
        net_over.shed_rate,
        net_over.sheds,
        net_over.opens,
        net_over.p50_ms,
        net_over.p99_ms
    );
    json.push_str(",\n  \"net_overload\": {\n");
    let _ = writeln!(json, "    \"workload\": \"{}\",", net_workload.name);
    let _ = writeln!(json, "    \"clients\": {},", net_over.clients);
    let _ = writeln!(json, "    \"session_cap\": {},", net_over.session_cap);
    let _ = writeln!(json, "    \"opens\": {},", net_over.opens);
    let _ = writeln!(json, "    \"sheds\": {},", net_over.sheds);
    let _ = writeln!(json, "    \"shed_rate\": {:.4},", net_over.shed_rate);
    let _ = writeln!(json, "    \"page_p50_ms\": {:.4},", net_over.p50_ms);
    let _ = writeln!(json, "    \"page_p99_ms\": {:.4}", net_over.p99_ms);
    json.push_str("  }");

    // Delta scenario: incremental maintenance vs full rebuild on path-4 —
    // the serving-ingest counterpart to the prep_ms numbers above.
    let delta_workload = *service_workloads
        .first()
        .expect("at least one service workload");
    let delta = run_delta(delta_workload);
    println!("== delta4 ({} edits, refresh vs rebuild) ==", delta.edits);
    println!(
        "  {:<10} apply {:>8.4}ms  refresh {:>8.4}ms  rebuild_prep {:>8.4}ms  speedup {:>6.1}x",
        delta_workload.name, delta.apply_ms, delta.refresh_ms, delta.rebuild_prep_ms, delta.speedup
    );
    json.push_str(",\n  \"delta4\": {\n");
    let _ = writeln!(json, "    \"workload\": \"{}\",", delta_workload.name);
    let _ = writeln!(json, "    \"edits\": {},", delta.edits);
    let _ = writeln!(json, "    \"apply_ms\": {:.4},", delta.apply_ms);
    let _ = writeln!(json, "    \"refresh_ms\": {:.4},", delta.refresh_ms);
    let _ = writeln!(
        json,
        "    \"rebuild_prep_ms\": {:.4},",
        delta.rebuild_prep_ms
    );
    let _ = writeln!(json, "    \"refresh_speedup\": {:.2}", delta.speedup);
    json.push_str("  }");

    // Obs scenario: recording on vs off on the paged cursor — the cost of
    // leaving the delay instrumentation enabled in production.
    let obs_workload = *service_workloads
        .first()
        .expect("at least one service workload");
    let obs = run_obs(obs_workload);
    println!("== obs (tt({LIMIT}) recording on vs off, best of {OBS_REPEATS}) ==");
    println!(
        "  {:<10} on {:>8.4}ms  off {:>8.4}ms  overhead {:>+6.2}%",
        obs_workload.name, obs.on_ms, obs.off_ms, obs.overhead_pct
    );
    println!(
        "  recorded: ttf {}ns  delay p50 {}ns p90 {}ns p99 {}ns max {}ns",
        obs.ttf_ns, obs.delay.p50, obs.delay.p90, obs.delay.p99, obs.delay.max
    );
    json.push_str(",\n  \"obs\": {\n");
    let _ = writeln!(json, "    \"workload\": \"{}\",", obs_workload.name);
    let _ = writeln!(json, "    \"algorithm\": \"Take2\",");
    let _ = writeln!(json, "    \"page_size\": {SERVICE_PAGE_SIZE},");
    let _ = writeln!(json, "    \"repeats\": {OBS_REPEATS},");
    let _ = writeln!(json, "    \"tt1000_recording_on_ms\": {:.4},", obs.on_ms);
    let _ = writeln!(json, "    \"tt1000_recording_off_ms\": {:.4},", obs.off_ms);
    let _ = writeln!(json, "    \"overhead_pct\": {:.2},", obs.overhead_pct);
    let _ = writeln!(json, "    \"ttf_ns\": {},", obs.ttf_ns);
    let _ = writeln!(json, "    \"delay_p50_ns\": {},", obs.delay.p50);
    let _ = writeln!(json, "    \"delay_p90_ns\": {},", obs.delay.p90);
    let _ = writeln!(json, "    \"delay_p99_ns\": {},", obs.delay.p99);
    let _ = writeln!(json, "    \"delay_max_ns\": {}", obs.delay.max);
    json.push_str("  }");

    // Shard scenario: preprocessing wall-clock vs shard count on a path-4
    // instance 10× the default scale, plus the merged stream's TT(k) —
    // the scaling curve for the sharded-enumeration subsystem.
    let shard_n = scale.pick(800, 500_000, 2_000_000);
    let shard_db = Arc::new(uniform::path_or_star_database(4, shard_n, &mut rng(15)));
    let shard_spec = QuerySpec::from_query(
        &QueryBuilder::path(4).build(),
        RankingFunction::SumAscending,
    );
    let shard_tuples: usize = shard_spec
        .atoms
        .iter()
        .map(|a| shard_db.expect(&a.relation).len())
        .sum();
    let shard_runs = run_shard(&shard_spec, &shard_db);
    println!("== shard4 ({shard_tuples} input tuples, {threads} prep threads) ==");
    for r in &shard_runs {
        println!(
            "  shards {:<2} prep {:>10.4}ms  ttf {:>12}  tt(1000) {:>12}",
            r.shards, r.prep_ms, r.ttf_ms, r.tt1000_ms
        );
    }
    json.push_str(",\n  \"shard4\": {\n");
    let _ = writeln!(json, "    \"workload\": \"path4\",");
    let _ = writeln!(json, "    \"input_tuples\": {shard_tuples},");
    let _ = writeln!(json, "    \"algorithm\": \"Take2\",");
    let _ = writeln!(json, "    \"prep_threads\": {threads},");
    json.push_str("    \"runs\": [\n");
    for (ri, r) in shard_runs.iter().enumerate() {
        if ri > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "      {{\"shards\": {}, \"prep_ms\": {:.4}, \"ttf_ms\": {}, \"tt1000_ms\": {}}}",
            r.shards, r.prep_ms, r.ttf_ms, r.tt1000_ms
        );
    }
    json.push_str("\n    ]\n  }");

    if let Ok(path) = std::env::var("ANYK_HOTPATH_BASELINE") {
        if let Ok(baseline) = std::fs::read_to_string(&path) {
            json.push_str(",\n  \"baseline\": ");
            // Indent the embedded document so the output stays readable.
            json.push_str(&baseline.trim_end().replace('\n', "\n  "));
        }
    }
    json.push_str("\n}\n");

    let out = std::env::var("ANYK_HOTPATH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".into());
    std::fs::write(&out, &json).expect("write bench output");
    println!("wrote {out}");
}
