//! Harness binary: Design-choice ablations (successor structures, equi-join encoding)
//! Run with: `cargo run --release -p anyk-bench --bin ablations`
//! Set `ANYK_SCALE=quick|default|paper` to control the input sizes.

fn main() {
    let scale = anyk_bench::Scale::from_env();
    anyk_bench::experiments::ablation::run(scale);
}
