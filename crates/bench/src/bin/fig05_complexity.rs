//! Harness binary: Fig. 5 measured complexity proxy
//! Run with: `cargo run --release -p anyk-bench --bin fig05_complexity`
//! Set `ANYK_SCALE=quick|default|paper` to control the input sizes.

fn main() {
    let scale = anyk_bench::Scale::from_env();
    anyk_bench::experiments::fig05::run(scale);
}
