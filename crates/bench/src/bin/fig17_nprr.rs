//! Harness binary: Fig. 17: WCOJ vs any-k TTF scaling on database I1
//! Run with: `cargo run --release -p anyk-bench --bin fig17_nprr`
//! Set `ANYK_SCALE=quick|default|paper` to control the input sizes.

fn main() {
    let scale = anyk_bench::Scale::from_env();
    anyk_bench::experiments::fig17::run(scale);
}
