//! Harness binary: Fig. 14: Batch vs a generic hash-join+sort engine
//! Run with: `cargo run --release -p anyk-bench --bin fig14_batch_vs_sql`
//! Set `ANYK_SCALE=quick|default|paper` to control the input sizes.

fn main() {
    let scale = anyk_bench::Scale::from_env();
    anyk_bench::experiments::fig14::run(scale);
}
