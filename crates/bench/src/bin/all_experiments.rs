//! Harness binary: run every experiment of the evaluation back to back.
//! Run with: `cargo run --release -p anyk-bench --bin all_experiments`
//! Set `ANYK_SCALE=quick|default|paper` to control the input sizes.

use anyk_bench::experiments;

fn main() {
    let scale = anyk_bench::Scale::from_env();
    println!("### anyk experiment suite (scale: {scale:?}) ###\n");
    experiments::fig05::run(scale);
    println!();
    experiments::fig09::run(scale);
    println!();
    experiments::results_over_time::fig10(scale);
    experiments::results_over_time::fig11(scale);
    experiments::results_over_time::fig12(scale);
    experiments::results_over_time::fig13(scale);
    println!();
    experiments::fig14::run(scale);
    println!();
    experiments::fig17::run(scale);
    println!();
    experiments::sec913::run(scale);
    println!();
    experiments::ablation::run(scale);
}
