//! Harness binary: Fig. 12: star queries of sizes 3 and 6
//! Run with: `cargo run --release -p anyk-bench --bin fig12_stars`
//! Set `ANYK_SCALE=quick|default|paper` to control the input sizes.

fn main() {
    let scale = anyk_bench::Scale::from_env();
    anyk_bench::experiments::results_over_time::fig12(scale);
}
