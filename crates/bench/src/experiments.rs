//! One module per evaluation figure/table of the paper. Each `run(scale)`
//! prints the rows/series the paper plots; the binaries in `src/bin/` are
//! thin wrappers around these functions.

use crate::{
    measure_algorithms, measure_naive_sql, measure_wcoj, print_measurements, AlgoMeasurement, Scale,
};
use anyk_core::AnyKAlgorithm;
use anyk_datagen::social::{scale_free_edges, social_database, SocialGraphConfig};
use anyk_datagen::{adversarial, cycles, rng, uniform};
use anyk_engine::{rankjoin, yannakakis, RankedQuery, RankingFunction};
use anyk_query::{ConjunctiveQuery, QueryBuilder};
use anyk_storage::Database;
use std::time::Instant;

/// The query shapes of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryShape {
    /// ℓ-path query (Example 2).
    Path,
    /// ℓ-star query (Appendix B).
    Star,
    /// ℓ-cycle query (Example 2).
    Cycle,
}

impl QueryShape {
    fn build(self, ell: usize) -> ConjunctiveQuery {
        match self {
            QueryShape::Path => QueryBuilder::path(ell).build(),
            QueryShape::Star => QueryBuilder::star(ell).build(),
            QueryShape::Cycle => QueryBuilder::cycle(ell).build(),
        }
    }

    fn name(self) -> &'static str {
        match self {
            QueryShape::Path => "Path",
            QueryShape::Star => "Star",
            QueryShape::Cycle => "Cycle",
        }
    }
}

/// The datasets of the evaluation (§7): synthetic and social-graph stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Uniform synthetic data (path/star) or the worst-case construction (cycle).
    Synthetic,
    /// Bitcoin-OTC–like trust graph.
    BitcoinLike,
    /// TwitterS-like graph (used for cycle queries).
    TwitterSLike,
    /// TwitterL-like graph (used for path/star queries).
    TwitterLLike,
}

impl Dataset {
    fn name(self) -> &'static str {
        match self {
            Dataset::Synthetic => "Synthetic",
            Dataset::BitcoinLike => "Bitcoin-like",
            Dataset::TwitterSLike => "TwitterS-like",
            Dataset::TwitterLLike => "TwitterL-like",
        }
    }

    fn database(self, shape: QueryShape, ell: usize, n: usize, scale: Scale) -> Database {
        let mut r = rng(anyk_datagen::DEFAULT_SEED);
        match self {
            Dataset::Synthetic => match shape {
                QueryShape::Cycle => cycles::worst_case_cycle_database(ell, n, &mut r),
                _ => uniform::path_or_star_database(ell, n, &mut r),
            },
            Dataset::BitcoinLike => {
                let factor = scale.pick(32, 8, 1);
                social_database(
                    ell,
                    SocialGraphConfig::bitcoin_like().scaled_down(factor),
                    &mut r,
                )
            }
            Dataset::TwitterSLike => {
                let factor = scale.pick(64, 16, 1);
                social_database(
                    ell,
                    SocialGraphConfig::twitter_s().scaled_down(factor),
                    &mut r,
                )
            }
            Dataset::TwitterLLike => {
                let factor = scale.pick(256, 64, 4);
                social_database(
                    ell,
                    SocialGraphConfig::twitter_l().scaled_down(factor),
                    &mut r,
                )
            }
        }
    }
}

/// The generic "#results over time" experiment behind Figs. 10–13: run every
/// algorithm on one (query shape, size, dataset) cell and print
/// TTF / TT(k) / TTL rows.
pub fn results_over_time_cell(
    label: &str,
    shape: QueryShape,
    ell: usize,
    dataset: Dataset,
    n: usize,
    limit: Option<usize>,
    scale: Scale,
) {
    let db = dataset.database(shape, ell, n, scale);
    let input_n = db.max_cardinality();
    let query = shape.build(ell);
    let prepared = match RankedQuery::new(&db, &query) {
        Ok(p) => p,
        Err(e) => {
            println!("\n=== {label} === skipped: {e}");
            return;
        }
    };
    let total = prepared.count_answers();
    let checkpoints = [1usize, 1000, 100_000];
    let rows = measure_algorithms(&prepared, &AnyKAlgorithm::ALL, limit, &checkpoints);
    print_measurements(
        &format!(
            "{label}: {}-{} on {} (n={input_n}, |out|={total}, limit={:?})",
            ell,
            shape.name(),
            dataset.name(),
            limit
        ),
        &rows,
    );
}

/// Fig. 5 proxy: measured TTF / mean delay / TTL / memory proxy per
/// algorithm on a 4-path, illustrating the complexity table empirically.
pub mod fig05 {
    use super::*;

    /// Run the experiment.
    pub fn run(scale: Scale) {
        let n = scale.pick(500, 4_000, 10_000);
        let db = uniform::path_or_star_database(4, n, &mut rng(1));
        let query = QueryBuilder::path(4).build();
        let prepared = RankedQuery::new(&db, &query).unwrap();
        println!(
            "Fig. 5 (measured proxy): 4-path, n={n}, |out|={}",
            prepared.count_answers()
        );
        let rows = measure_algorithms(&prepared, &AnyKAlgorithm::ALL, None, &[1, 100, 10_000]);
        print_measurements("TTF / TT(k) / TTL per algorithm", &rows);
        println!(
            "\nExpected shape (Fig. 5): all any-k algorithms have TTF ≈ O(ℓn) ≪ Batch;\n\
             Eager pays extra sorting up front; Recursive has the best TTL on paths;\n\
             Lazy/Take2/Eager have the lowest delay for small k."
        );
    }
}

/// Fig. 9: dataset statistics table (for the generated stand-in graphs).
pub mod fig09 {
    use super::*;

    /// Run the experiment.
    pub fn run(scale: Scale) {
        println!("Fig. 9: dataset statistics (scale-free stand-ins, see DESIGN.md)");
        println!(
            "{:<15} {:>9} {:>10} {:>11} {:>11}",
            "dataset", "nodes", "edges", "max degree", "avg degree"
        );
        let configs = [
            (
                "Bitcoin-like",
                SocialGraphConfig::bitcoin_like(),
                scale.pick(16, 4, 1),
            ),
            (
                "TwitterS-like",
                SocialGraphConfig::twitter_s(),
                scale.pick(32, 8, 1),
            ),
            (
                "TwitterL-like",
                SocialGraphConfig::twitter_l(),
                scale.pick(128, 32, 1),
            ),
        ];
        for (name, config, factor) in configs {
            let edges = scale_free_edges(config.scaled_down(factor), &mut rng(42));
            let stats = anyk_datagen::social::summarize(&edges);
            println!(
                "{:<15} {:>9} {:>10} {:>11} {:>11.1}",
                name, stats.nodes, stats.edges, stats.max_degree, stats.avg_degree
            );
        }
        println!(
            "\nPaper values (full scale): Bitcoin 5881/35592/1298/12.1, \
             TwitterS 8000/87687/6093/21.9, TwitterL 80000/2250298/22072/56.3"
        );
    }
}

/// Figs. 10–13: #results over time for every (shape, size, dataset) cell.
pub mod results_over_time {
    use super::*;

    /// Fig. 10: all three shapes at size 4.
    pub fn fig10(scale: Scale) {
        for shape in [QueryShape::Path, QueryShape::Star, QueryShape::Cycle] {
            run_shape(scale, shape, 4, "Fig. 10");
        }
    }

    /// Fig. 11: path queries of sizes 3 and 6.
    pub fn fig11(scale: Scale) {
        for ell in [3usize, 6] {
            run_shape(scale, QueryShape::Path, ell, "Fig. 11");
        }
    }

    /// Fig. 12: star queries of sizes 3 and 6.
    pub fn fig12(scale: Scale) {
        for ell in [3usize, 6] {
            run_shape(scale, QueryShape::Star, ell, "Fig. 12");
        }
    }

    /// Fig. 13: cycle queries of size 6.
    pub fn fig13(scale: Scale) {
        run_shape(scale, QueryShape::Cycle, 6, "Fig. 13");
    }

    /// One row of sub-figures: (a) synthetic full enumeration, (b) synthetic
    /// large with top-n/2, (c) Bitcoin-like top-n/2, (d) Twitter-like top-n/2.
    pub fn run_shape(scale: Scale, shape: QueryShape, ell: usize, fig: &str) {
        let is_cycle = shape == QueryShape::Cycle;
        // (a) small synthetic input, full enumeration.
        let n_small = match (is_cycle, ell) {
            (true, 6) => scale.pick(40, 120, 400),
            (true, _) => scale.pick(100, 600, 5_000),
            (false, 6) => scale.pick(40, 100, 100),
            (false, 3) => scale.pick(500, 5_000, 100_000),
            _ => scale.pick(300, 2_000, 10_000),
        };
        results_over_time_cell(
            &format!("{fig}(a)"),
            shape,
            ell,
            Dataset::Synthetic,
            n_small,
            None,
            scale,
        );
        // (b) larger synthetic input, top-(n/2).
        let n_large = if is_cycle {
            scale.pick(500, 5_000, 100_000)
        } else {
            scale.pick(2_000, 20_000, 1_000_000)
        };
        results_over_time_cell(
            &format!("{fig}(b)"),
            shape,
            ell,
            Dataset::Synthetic,
            n_large,
            Some(n_large / 2),
            scale,
        );
        // (c) Bitcoin-like, top-(n/2) (cycles use top-10n like the paper).
        let bitcoin_limit = if is_cycle { 10 * 1_000 } else { 2_000 };
        results_over_time_cell(
            &format!("{fig}(c)"),
            shape,
            ell,
            Dataset::BitcoinLike,
            0,
            Some(bitcoin_limit),
            scale,
        );
        // (d) Twitter-like, top-(n/2) / top-10n.
        let (twitter, limit) = if is_cycle {
            (Dataset::TwitterSLike, 10 * 1_000)
        } else {
            (Dataset::TwitterLLike, 5_000)
        };
        results_over_time_cell(
            &format!("{fig}(d)"),
            shape,
            ell,
            twitter,
            0,
            Some(limit),
            scale,
        );
    }
}

/// Fig. 14: full-result time, our Batch (Yannakakis + sort) vs. the generic
/// hash-join + sort engine (the PostgreSQL stand-in).
pub mod fig14 {
    use super::*;

    /// Run the experiment.
    pub fn run(scale: Scale) {
        println!("Fig. 14: seconds to return the full sorted result, Batch vs generic engine");
        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>9}",
            "workload", "Batch", "GenericSQL", "|out|", "faster"
        );
        let cells: Vec<(QueryShape, usize, usize)> = vec![
            (QueryShape::Path, 3, scale.pick(500, 5_000, 100_000)),
            (QueryShape::Path, 4, scale.pick(300, 2_000, 10_000)),
            (QueryShape::Path, 6, scale.pick(40, 100, 100)),
            (QueryShape::Star, 3, scale.pick(500, 5_000, 100_000)),
            (QueryShape::Star, 4, scale.pick(300, 2_000, 10_000)),
            (QueryShape::Star, 6, scale.pick(40, 100, 100)),
            (QueryShape::Cycle, 4, scale.pick(100, 600, 5_000)),
            (QueryShape::Cycle, 6, scale.pick(40, 120, 400)),
        ];
        for (shape, ell, n) in cells {
            let db = Dataset::Synthetic.database(shape, ell, n, scale);
            let query = shape.build(ell);
            // Our Batch: for acyclic queries Yannakakis + sort; for cycles the
            // any-k engine's decomposition-based Batch plan.
            let start = Instant::now();
            let batch_count = if shape == QueryShape::Cycle {
                RankedQuery::new(&db, &query)
                    .unwrap()
                    .enumerate(AnyKAlgorithm::Batch)
                    .count()
            } else {
                yannakakis::batch_sorted(&db, &query, RankingFunction::SumAscending)
                    .unwrap()
                    .len()
            };
            let batch_time = start.elapsed();
            let (sql_time, sql_count) =
                measure_naive_sql(&db, &query, RankingFunction::SumAscending);
            assert_eq!(batch_count, sql_count);
            let pct = 100.0 * (1.0 - batch_time.as_secs_f64() / sql_time.as_secs_f64().max(1e-12));
            println!(
                "{:<22} {:>12} {:>12} {:>12} {:>8.0}%",
                format!("{}-{} n={}", ell, shape.name(), n),
                crate::fmt_duration(Some(batch_time)),
                crate::fmt_duration(Some(sql_time)),
                batch_count,
                pct
            );
        }
        println!("\nExpected shape (Fig. 14): Batch is 12%–54% faster than the generic engine.");
    }
}

/// Fig. 17: TTF scaling of WCOJ (Generic-Join + sort) vs our any-k
/// algorithms on the adversarial 4-cycle database I1 (Fig. 16).
pub mod fig17 {
    use super::*;

    /// Run the experiment.
    pub fn run(scale: Scale) {
        println!("Fig. 17: time-to-first on database I1 (4-cycle), WCOJ vs any-k");
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>14} {:>12}",
            "n", "WCOJ join", "WCOJ+sort", "Lazy TTF", "Recursive TTF", "|out|"
        );
        let base_sizes = [100usize, 200, 400, 800, 1_600, 3_200];
        let max = scale.pick(400, 1_600, 12_800);
        for &n in base_sizes.iter().filter(|&&n| n <= max) {
            let db = adversarial::nprr_i1(n);
            let query = QueryBuilder::cycle(4).build();
            let (wcoj_total, wcoj_join, out_size) =
                measure_wcoj(&db, &query, RankingFunction::SumAscending);
            let prepared = RankedQuery::new(&db, &query).unwrap();
            let rows: Vec<AlgoMeasurement> = measure_algorithms(
                &prepared,
                &[AnyKAlgorithm::Lazy, AnyKAlgorithm::Recursive],
                Some(1),
                &[1],
            );
            println!(
                "{:<10} {:>14} {:>14} {:>14} {:>14} {:>12}",
                n,
                crate::fmt_duration(Some(wcoj_join)),
                crate::fmt_duration(Some(wcoj_total)),
                crate::fmt_duration(rows[0].ttf),
                crate::fmt_duration(rows[1].ttf),
                out_size
            );
        }
        println!(
            "\nExpected shape (Fig. 17): the WCOJ columns grow quadratically with n \
             (|out| = 2n²) while the any-k TTF columns grow (near-)linearly."
        );
    }
}

/// §9.1.3: the middleware rank-join baseline on the adversarial database I2.
pub mod sec913 {
    use super::*;

    /// Run the experiment.
    pub fn run(scale: Scale) {
        println!("§9.1.3: Rank-Join (HRJN-style) vs any-k on database I2 (3-path, top-1)");
        println!(
            "{:<10} {:>16} {:>18} {:>14} {:>14}",
            "n", "RJ accesses", "RJ combinations", "RJ time", "any-k TTF"
        );
        let sizes = [50usize, 100, 200, 400, 800];
        let max = scale.pick(100, 400, 800);
        for &n in sizes.iter().filter(|&&n| n <= max) {
            let db = adversarial::rankjoin_i2(n);
            let query = QueryBuilder::path(3).build();
            let start = Instant::now();
            let (top, stats) = rankjoin::rank_join_top_k(&db, &query, 1).unwrap();
            let rj_time = start.elapsed();
            assert!((top[0].weight() - adversarial::RANKJOIN_I2_TOP_WEIGHT).abs() < 1e-9);
            let prepared = RankedQuery::new(&db, &query).unwrap();
            let rows = measure_algorithms(&prepared, &[AnyKAlgorithm::Lazy], Some(1), &[1]);
            println!(
                "{:<10} {:>16} {:>18} {:>14} {:>14}",
                n,
                stats.sorted_accesses,
                stats.partial_combinations,
                crate::fmt_duration(Some(rj_time)),
                crate::fmt_duration(rows[0].ttf)
            );
        }
        println!(
            "\nExpected shape (§9.1.3): the rank-join combination count grows ~ (n−1)² \
             while any-k finds the same top answer in O(nℓ)."
        );
    }
}

/// Ablation: the successor-structure design choices of anyK-part (§4.1.3),
/// and the equi-join value-node encoding vs the naive quadratic encoding.
pub mod ablation {
    use super::*;
    use anyk_core::dioid::TropicalMin;
    use anyk_core::ranked_enumerate;
    use anyk_core::tdp::TdpBuilder;

    /// Run the ablations.
    pub fn run(scale: Scale) {
        // Successor structures on a path workload (delay-dominated regime).
        let n = scale.pick(500, 4_000, 20_000);
        let db = uniform::path_or_star_database(4, n, &mut rng(3));
        let query = QueryBuilder::path(4).build();
        let prepared = RankedQuery::new(&db, &query).unwrap();
        let k = scale.pick(1_000, 20_000, 200_000);
        println!("Ablation A: anyK-part successor structures, 4-path n={n}, top-{k}");
        let rows = measure_algorithms(
            &prepared,
            &[
                AnyKAlgorithm::Eager,
                AnyKAlgorithm::Lazy,
                AnyKAlgorithm::Take2,
                AnyKAlgorithm::All,
            ],
            Some(k),
            &[1, k / 2],
        );
        print_measurements("successor structures", &rows);

        // Equi-join encoding: value nodes (O(ℓn) edges) vs naive bipartite
        // (O(ℓn²) edges) on a skewed 2-path instance.
        let n2 = scale.pick(200, 1_000, 4_000);
        println!("\nAblation B: equi-join encoding, 2-path with a single join value, n={n2}");
        for (label, shared_value_node) in
            [("value-node (Fig. 3)", true), ("naive bipartite", false)]
        {
            let start = Instant::now();
            let mut b = TdpBuilder::<TropicalMin>::serial(2);
            let left: Vec<_> = (0..n2).map(|i| b.add_state(1, (i as f64).into())).collect();
            let right: Vec<_> = (0..n2)
                .map(|i| b.add_state(2, (i as f64 * 0.5).into()))
                .collect();
            for &l in &left {
                b.connect_root(l);
            }
            if shared_value_node {
                // Emulate the value node by funnelling through one extra state
                // of weight 1̄ — requires a 3-stage chain.
                let mut b3 = TdpBuilder::<TropicalMin>::new();
                let s1 = b3.add_stage_under_root("R1", true);
                let v = b3.add_stage("v", s1, false);
                let s2 = b3.add_stage("R2", v, true);
                let l3: Vec<_> = (0..n2)
                    .map(|i| b3.add_state(s1.index(), (i as f64).into()))
                    .collect();
                let vn = b3.add_state(v.index(), 0.0.into());
                let r3: Vec<_> = (0..n2)
                    .map(|i| b3.add_state(s2.index(), (i as f64 * 0.5).into()))
                    .collect();
                for &l in &l3 {
                    b3.connect_root(l);
                    b3.connect(l, vn);
                }
                for &r in &r3 {
                    b3.connect(vn, r);
                }
                let inst = b3.build();
                let produced = ranked_enumerate(&inst, AnyKAlgorithm::Take2)
                    .take(n2)
                    .count();
                println!(
                    "  {label:<22} edges={:>10}  build+top-{produced}: {}",
                    inst.num_edges(),
                    crate::fmt_duration(Some(start.elapsed()))
                );
            } else {
                for &l in &left {
                    for &r in &right {
                        b.connect(l, r);
                    }
                }
                let inst = b.build();
                let produced = ranked_enumerate(&inst, AnyKAlgorithm::Take2)
                    .take(n2)
                    .count();
                println!(
                    "  {label:<22} edges={:>10}  build+top-{produced}: {}",
                    inst.num_edges(),
                    crate::fmt_duration(Some(start.elapsed()))
                );
            }
        }
    }
}
