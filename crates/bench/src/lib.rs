//! # anyk-bench
//!
//! The experiment harness reproducing the paper's evaluation (§7, §9.1).
//!
//! Every table and figure of the evaluation has a corresponding module in
//! [`experiments`] and a binary in `src/bin/` that prints the same
//! rows/series the paper reports (see DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded results). Criterion micro-benchmarks live in
//! `benches/`.
//!
//! Experiment sizes default to laptop-friendly values; set the environment
//! variable `ANYK_SCALE=paper` for larger runs closer to the paper's sizes,
//! or `ANYK_SCALE=quick` for the smallest smoke-test sizes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;

use anyk_core::metrics::EnumerationTrace;
use anyk_core::AnyKAlgorithm;
use anyk_engine::{naive_sql, wcoj, RankedQuery, RankingFunction};
use anyk_query::ConjunctiveQuery;
use anyk_storage::Database;
use std::time::{Duration, Instant};

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for smoke tests (seconds in total).
    Quick,
    /// Default sizes: the shape of every figure is visible within minutes.
    Default,
    /// Larger sizes approaching the paper's configuration.
    Paper,
}

impl Scale {
    /// Read the scale from the `ANYK_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("ANYK_SCALE").unwrap_or_default().as_str() {
            "quick" => Scale::Quick,
            "paper" => Scale::Paper,
            _ => Scale::Default,
        }
    }

    /// Pick a size by scale: `(quick, default, paper)`.
    pub fn pick(self, quick: usize, default: usize, paper: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Paper => paper,
        }
    }
}

/// Timing results for one algorithm on one workload.
#[derive(Debug, Clone)]
pub struct AlgoMeasurement {
    /// Algorithm name (or baseline label).
    pub name: String,
    /// Time to the first result.
    pub ttf: Option<Duration>,
    /// Time to each requested checkpoint `k` (same order as requested).
    pub checkpoints: Vec<(usize, Option<Duration>)>,
    /// Time to the last produced result.
    pub ttl: Option<Duration>,
    /// Number of results produced (may be capped by the `limit`).
    pub produced: usize,
}

/// Run the given any-k algorithms on a prepared query, producing at most
/// `limit` answers each, and record the time to each checkpoint.
pub fn measure_algorithms(
    prepared: &RankedQuery<'_>,
    algorithms: &[AnyKAlgorithm],
    limit: Option<usize>,
    checkpoints: &[usize],
) -> Vec<AlgoMeasurement> {
    let mut out = Vec::new();
    for &alg in algorithms {
        let mut trace = EnumerationTrace::new();
        let mut produced = 0usize;
        for _ in prepared.enumerate(alg) {
            trace.record();
            produced += 1;
            if let Some(l) = limit {
                if produced >= l {
                    break;
                }
            }
        }
        out.push(AlgoMeasurement {
            name: alg.name().to_string(),
            ttf: trace.ttf(),
            checkpoints: checkpoints.iter().map(|&k| (k, trace.tt(k))).collect(),
            ttl: trace.ttl(),
            produced,
        });
    }
    out
}

/// Measure the "generic SQL engine" baseline (hash joins + sort, no
/// semi-join reduction): returns (total time, number of results).
pub fn measure_naive_sql(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
) -> (Duration, usize) {
    let start = Instant::now();
    let out = naive_sql::join_and_sort(db, query, ranking).expect("naive join");
    (start.elapsed(), out.len())
}

/// Measure the WCOJ (Generic-Join) + sort baseline: returns (time to the
/// full sorted output, time of the join alone, number of results).
pub fn measure_wcoj(
    db: &Database,
    query: &ConjunctiveQuery,
    ranking: RankingFunction,
) -> (Duration, Duration, usize) {
    let start = Instant::now();
    let unsorted = wcoj::generic_join(db, query, ranking).expect("wcoj join");
    let join_time = start.elapsed();
    // Sorting cost is what matters for the comparison; the direction of the
    // order is immaterial for the measurement.
    let mut weights: Vec<f64> = unsorted.iter().map(|a| a.weight()).collect();
    weights.sort_by(f64::total_cmp);
    (start.elapsed(), join_time, unsorted.len())
}

/// Format an optional duration for table output.
pub fn fmt_duration(d: Option<Duration>) -> String {
    match d {
        Some(d) => {
            if d.as_secs_f64() >= 1.0 {
                format!("{:.3}s", d.as_secs_f64())
            } else {
                format!("{:.3}ms", d.as_secs_f64() * 1e3)
            }
        }
        None => "-".to_string(),
    }
}

/// Print a measurement table with a header and per-algorithm rows.
pub fn print_measurements(title: &str, rows: &[AlgoMeasurement]) {
    println!("\n=== {title} ===");
    let mut header = format!("{:<11} {:>12}", "algorithm", "TTF");
    if let Some(first) = rows.first() {
        for (k, _) in &first.checkpoints {
            header.push_str(&format!(" {:>12}", format!("TT({k})")));
        }
    }
    header.push_str(&format!(" {:>12} {:>12}", "TTL", "#results"));
    println!("{header}");
    for row in rows {
        let mut line = format!("{:<11} {:>12}", row.name, fmt_duration(row.ttf));
        for (_, t) in &row.checkpoints {
            line.push_str(&format!(" {:>12}", fmt_duration(*t)));
        }
        line.push_str(&format!(
            " {:>12} {:>12}",
            fmt_duration(row.ttl),
            row.produced
        ));
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anyk_datagen::{rng, uniform};
    use anyk_query::QueryBuilder;

    #[test]
    fn scale_picks_sizes() {
        assert_eq!(Scale::Quick.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Paper.pick(1, 2, 3), 3);
    }

    #[test]
    fn measurement_runs_every_algorithm() {
        let db = uniform::path_or_star_database(3, 200, &mut rng(1));
        let query = QueryBuilder::path(3).build();
        let prepared = RankedQuery::new(&db, &query).unwrap();
        let rows = measure_algorithms(&prepared, &AnyKAlgorithm::ALL, Some(50), &[1, 10]);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.produced <= 50);
            if row.produced > 0 {
                assert!(row.ttf.is_some());
                assert!(row.ttl.is_some());
            }
        }
    }

    #[test]
    fn baselines_measure_without_panicking() {
        let db = uniform::path_or_star_database(3, 100, &mut rng(2));
        let query = QueryBuilder::path(3).build();
        let (t, n) = measure_naive_sql(&db, &query, RankingFunction::SumAscending);
        assert!(t.as_nanos() > 0);
        let (total, join, n2) = measure_wcoj(&db, &query, RankingFunction::SumAscending);
        assert!(total >= join);
        assert_eq!(n, n2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(None), "-");
        assert!(fmt_duration(Some(Duration::from_millis(2))).ends_with("ms"));
        assert!(fmt_duration(Some(Duration::from_secs(2))).ends_with('s'));
    }
}
