//! Criterion benchmarks covering every experiment group of the paper's
//! evaluation, at smoke-test sizes so that `cargo bench` completes quickly on
//! a laptop. The harness binaries in `src/bin/` run the same experiments at
//! larger, figure-faithful sizes and print the series the paper plots.
//!
//! Groups:
//! * `fig10_path4` / `fig10_star4` / `fig10_cycle4` — #results-over-time
//!   workloads of Fig. 10 (TTF + top-k + full enumeration per algorithm);
//! * `fig11_13_sizes` — the size-3/6 variants of Figs. 11–13;
//! * `fig14_batch_vs_sql` — Batch vs the generic hash-join + sort engine;
//! * `fig17_nprr_i1` — WCOJ vs any-k TTF on the adversarial instance I1;
//! * `sec913_rankjoin_i2` — rank-join vs any-k top-1 on instance I2;
//! * `ablation_successors` — the anyK-part successor-structure ablation.

use anyk_core::AnyKAlgorithm;
use anyk_datagen::{adversarial, cycles, rng, uniform};
use anyk_engine::{naive_sql, rankjoin, wcoj, yannakakis, RankedQuery, RankingFunction};
use anyk_query::QueryBuilder;
use anyk_storage::Database;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Enumerate the top `k` (or all, if `None`) answers and return how many were
/// produced — the quantity every group benchmarks.
fn run_topk(prepared: &RankedQuery<'_>, algorithm: AnyKAlgorithm, k: Option<usize>) -> usize {
    match k {
        Some(k) => prepared.enumerate(algorithm).take(k).count(),
        None => prepared.enumerate(algorithm).count(),
    }
}

fn bench_results_over_time(c: &mut Criterion) {
    // (label, database, query, top-k or full)
    let mut r = rng(1);
    let cases: Vec<(&str, Database, usize, Option<usize>)> = vec![
        (
            "fig10_path4_full",
            uniform::path_or_star_database(4, 100, &mut r),
            0,
            None,
        ),
        (
            "fig10_path4_top100",
            uniform::path_or_star_database(4, 2_000, &mut r),
            0,
            Some(100),
        ),
        (
            "fig10_star4_top100",
            uniform::path_or_star_database(4, 2_000, &mut r),
            1,
            Some(100),
        ),
        (
            "fig10_cycle4_top100",
            cycles::worst_case_cycle_database(4, 400, &mut r),
            2,
            Some(100),
        ),
        (
            "fig11_path3_top100",
            uniform::path_or_star_database(3, 2_000, &mut r),
            0,
            Some(100),
        ),
        (
            "fig11_path6_top100",
            uniform::path_or_star_database(6, 1_000, &mut r),
            0,
            Some(100),
        ),
        (
            "fig12_star6_top100",
            uniform::path_or_star_database(6, 1_000, &mut r),
            1,
            Some(100),
        ),
        (
            "fig13_cycle6_top100",
            cycles::worst_case_cycle_database(6, 200, &mut r),
            2,
            Some(100),
        ),
    ];
    for (label, db, shape, k) in &cases {
        let query = match shape {
            0 => QueryBuilder::path(db.len()).build(),
            1 => QueryBuilder::star(db.len()).build(),
            _ => QueryBuilder::cycle(db.len()).build(),
        };
        let prepared = RankedQuery::new(db, &query).expect("plan");
        let mut group = c.benchmark_group(*label);
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(300));
        group.measurement_time(Duration::from_millis(1500));
        for algorithm in AnyKAlgorithm::ALL {
            group.bench_with_input(
                BenchmarkId::from_parameter(algorithm.name()),
                &algorithm,
                |b, &alg| b.iter(|| run_topk(&prepared, alg, *k)),
            );
        }
        group.finish();
    }
}

fn bench_fig14_batch_vs_sql(c: &mut Criterion) {
    let db = uniform::path_or_star_database(4, 800, &mut rng(2));
    let query = QueryBuilder::path(4).build();
    let mut group = c.benchmark_group("fig14_batch_vs_sql_path4");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(1500));
    group.bench_function("Batch(Yannakakis+sort)", |b| {
        b.iter(|| {
            yannakakis::batch_sorted(&db, &query, RankingFunction::SumAscending)
                .unwrap()
                .len()
        })
    });
    group.bench_function("GenericSQL(hash-join+sort)", |b| {
        b.iter(|| {
            naive_sql::join_and_sort(&db, &query, RankingFunction::SumAscending)
                .unwrap()
                .len()
        })
    });
    group.finish();
}

fn bench_fig17_nprr(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_nprr_i1");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(1500));
    for n in [100usize, 200, 400] {
        let db = adversarial::nprr_i1(n);
        let query = QueryBuilder::cycle(4).build();
        group.bench_with_input(BenchmarkId::new("wcoj_full_sorted", n), &n, |b, _| {
            b.iter(|| {
                wcoj::generic_join_sorted(&db, &query, RankingFunction::SumAscending)
                    .unwrap()
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("anyk_lazy_ttf", n), &n, |b, _| {
            b.iter(|| {
                let prepared = RankedQuery::new(&db, &query).unwrap();
                let found = prepared.enumerate(AnyKAlgorithm::Lazy).next().is_some();
                found
            })
        });
    }
    group.finish();
}

fn bench_sec913_rankjoin(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec913_rankjoin_i2");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(1500));
    for n in [100usize, 400] {
        let db = adversarial::rankjoin_i2(n);
        let query = QueryBuilder::path(3).build();
        group.bench_with_input(BenchmarkId::new("rank_join_top1", n), &n, |b, _| {
            b.iter(|| rankjoin::rank_join_top_k(&db, &query, 1).unwrap().0.len())
        });
        group.bench_with_input(BenchmarkId::new("anyk_top1", n), &n, |b, _| {
            b.iter(|| {
                let prepared = RankedQuery::new(&db, &query).unwrap();
                let found = prepared.enumerate(AnyKAlgorithm::Lazy).next().is_some();
                found
            })
        });
    }
    group.finish();
}

fn bench_ablation_successors(c: &mut Criterion) {
    // The pure anyK-part successor ablation on a fixed prepared plan:
    // identical workload, only the successor structure changes.
    let db = uniform::path_or_star_database(4, 2_000, &mut rng(3));
    let query = QueryBuilder::path(4).build();
    let prepared = RankedQuery::new(&db, &query).unwrap();
    let mut group = c.benchmark_group("ablation_successor_structures_top5000");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(1500));
    for algorithm in [
        AnyKAlgorithm::Eager,
        AnyKAlgorithm::Lazy,
        AnyKAlgorithm::Take2,
        AnyKAlgorithm::All,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm.name()),
            &algorithm,
            |b, &alg| b.iter(|| run_topk(&prepared, alg, Some(5_000))),
        );
    }
    group.finish();
}

criterion_group! {
    name = paper;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    targets = bench_results_over_time,
        bench_fig14_batch_vs_sql,
        bench_fig17_nprr,
        bench_sec913_rankjoin,
        bench_ablation_successors
}
criterion_main!(paper);
