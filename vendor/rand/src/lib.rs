//! Offline vendored shim for the [`rand`](https://crates.io/crates/rand)
//! crate, covering exactly the API surface this workspace uses:
//! [`rngs::SmallRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), and [`SeedableRng::seed_from_u64`].
//!
//! The build environment has no registry access, so the workspace patches
//! `rand` to this crate. The generator is xoshiro256++ seeded via splitmix64
//! — deterministic for a given seed, which is all the datagen crate needs
//! (reproducible experiment inputs). The streams differ from upstream
//! `rand`'s `SmallRng`, which is acceptable: no recorded experiment depends
//! on the exact byte stream, only on determinism.

#![warn(missing_docs)]

/// Random number generator core: a source of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching the subset of `rand::SeedableRng` used
/// here (`seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain with
/// `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = <f64 as Standard>::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Extension trait mirroring `rand::Rng` for the methods this workspace uses.
pub trait Rng: RngCore {
    /// Sample a value uniformly from the type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..10u64);
            assert!((3..10).contains(&v));
            let w = r.gen_range(-10i32..=10);
            assert!((-10..=10).contains(&w));
            let f = r.gen_range(0.0..5.0);
            assert!((0.0..5.0).contains(&f));
            let u = r.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
