//! Offline vendored shim for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate, covering exactly the API surface this workspace's
//! tests use: the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, range / tuple / `Vec` strategies, [`collection::vec`],
//! [`arbitrary::any`], [`ProptestConfig`](test_runner::ProptestConfig), and
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case panics
//! with the generated input's `Debug` representation via the normal assert
//! message. Generation is deterministic per test (seeded from the test
//! name), so failures reproduce across runs.

#![warn(missing_docs)]

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A composable generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i16, i32, i64, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );

    /// A `Vec` of strategies generates one value per element.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.new_value(rng)).collect()
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable length specifications for [`vec`].
    pub trait IntoSizeRange {
        /// Lower and upper bound (inclusive) on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The `any::<T>()` entry point for types with a canonical full-domain
/// strategy.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value uniformly from the type's domain.
        fn generate(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn generate(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u64 {
        fn generate(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Test-runner plumbing: configuration and the deterministic RNG.
pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic xoshiro256++ generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property (panics on failure in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property (panics on failure in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property (panics on failure in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(@config($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            @config($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@config($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("unit");
        for _ in 0..100 {
            let v = (1u64..5).new_value(&mut rng);
            assert!((1..5).contains(&v));
            let xs = crate::collection::vec(0i32..10, 2..=4).new_value(&mut rng);
            assert!((2..=4).contains(&xs.len()));
            assert!(xs.iter().all(|x| (0..10).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(x in 0u32..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flip;
        }
    }
}
