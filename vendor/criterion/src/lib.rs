//! Offline vendored shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the subset of the API used by
//! `crates/bench/benches/paper_experiments.rs`: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The shim runs each benchmark for the configured warm-up and measurement
//! windows and prints the mean iteration time — no statistics, plots, or
//! baselines, but `cargo bench` works offline and still catches order-of-
//! magnitude regressions.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id consisting of only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing configuration shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1200),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _parent: self,
        }
    }
}

/// A named group of benchmarks with its own timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Set the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Run a benchmark identified by name.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Run a benchmark parameterised by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// Finish the group (a no-op in the shim; results were already printed).
    pub fn finish(self) {}

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            config: self.config,
            mean: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        println!(
            "bench {:<60} {:>12.3?} ({} iterations)",
            format!("{}/{}", self.name, label),
            bencher.mean,
            bencher.iterations,
        );
    }
}

/// Executes the benchmarked closure and records timing.
pub struct Bencher {
    config: Config,
    mean: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measure `f` repeatedly: warm up, then time batches until the
    /// measurement window is exhausted, recording the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            std::hint::black_box(f());
        }
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        let min_iterations = self.config.sample_size as u64;
        let deadline = Instant::now() + self.config.measurement_time;
        while iterations < min_iterations || Instant::now() < deadline {
            let start = Instant::now();
            std::hint::black_box(f());
            total += start.elapsed();
            iterations += 1;
            if iterations >= min_iterations && Instant::now() >= deadline {
                break;
            }
        }
        self.mean = total / iterations.max(1) as u32;
        self.iterations = iterations;
    }
}

/// Declare a group of benchmark functions, optionally with a shared
/// configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate a `main` function running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
