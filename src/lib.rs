//! # anyk — ranked enumeration of answers to full conjunctive queries
//!
//! Facade crate re-exporting the workspace members. Most users only need
//! [`engine`] (the query-level API) and [`core`] (the algorithm-level API).
//!
//! ```
//! use anyk::prelude::*;
//!
//! // Two relations R1(A,B), R2(B,C), ranked by the sum of tuple weights.
//! let mut db = Database::new();
//! let mut r1 = Relation::new("R1", 2);
//! r1.push(Tuple::new(vec![1, 10], 1.0));
//! r1.push(Tuple::new(vec![2, 20], 5.0));
//! let mut r2 = Relation::new("R2", 2);
//! r2.push(Tuple::new(vec![10, 7], 2.0));
//! r2.push(Tuple::new(vec![20, 8], 1.0));
//! db.add(r1);
//! db.add(r2);
//!
//! // QP2(x1,x2,x3) :- R1(x1,x2), R2(x2,x3)  (Example 2 of the paper).
//! let query = QueryBuilder::path(2).build();
//! let answers: Vec<_> = RankedQuery::new(&db, &query)
//!     .unwrap()
//!     .enumerate(Algorithm::Take2)
//!     .collect();
//! assert_eq!(answers.len(), 2);
//! assert_eq!(answers[0].weight(), 3.0); // (1,10) ⋈ (10,7)
//! ```

pub use anyk_core as core;
pub use anyk_datagen as datagen;
pub use anyk_engine as engine;
pub use anyk_obs as obs;
pub use anyk_query as query;
pub use anyk_server as server;
pub use anyk_storage as storage;

/// Commonly used items for application code.
pub mod prelude {
    pub use anyk_core::AnyKAlgorithm as Algorithm;
    pub use anyk_engine::{Answer, Page, PreparedQuery, RankedQuery, RankingFunction};
    pub use anyk_query::{parse_query, ConjunctiveQuery, QueryBuilder, QuerySpec};
    pub use anyk_server::{QueryService, ServiceConfig, SessionId};
    pub use anyk_storage::{Database, Relation, Tuple};
}
